#include "rt/value.hpp"

#include "support/string_util.hpp"

namespace lol::rt {

using support::RuntimeError;

Value Value::zero_of(ast::TypeKind t) {
  switch (t) {
    case ast::TypeKind::kNoob:
      return noob();
    case ast::TypeKind::kTroof:
      return troof(false);
    case ast::TypeKind::kNumbr:
      return numbr(0);
    case ast::TypeKind::kNumbar:
      return numbar(0.0);
    case ast::TypeKind::kYarn:
      return yarn("");
  }
  return noob();
}

ast::TypeKind Value::type() const {
  if (is_noob()) return ast::TypeKind::kNoob;
  if (is_troof()) return ast::TypeKind::kTroof;
  if (is_numbr()) return ast::TypeKind::kNumbr;
  if (is_numbar()) return ast::TypeKind::kNumbar;
  return ast::TypeKind::kYarn;
}

bool Value::to_troof() const {
  if (is_noob()) return false;
  if (is_troof()) return troof_raw();
  if (is_numbr()) return numbr_raw() != 0;
  if (is_numbar()) return numbar_raw() != 0.0;
  return !yarn_raw().empty();
}

std::int64_t Value::to_numbr(bool explicit_cast) const {
  switch (type()) {
    case ast::TypeKind::kNoob:
      if (explicit_cast) return 0;
      throw RuntimeError("cannot implicitly cast NOOB to NUMBR");
    case ast::TypeKind::kTroof:
      return troof_raw() ? 1 : 0;
    case ast::TypeKind::kNumbr:
      return numbr_raw();
    case ast::TypeKind::kNumbar:
      return static_cast<std::int64_t>(numbar_raw());
    case ast::TypeKind::kYarn: {
      auto v = support::parse_numbr(yarn_raw());
      if (!v) {
        throw RuntimeError("cannot cast YARN \"" + yarn_raw() +
                           "\" to NUMBR");
      }
      return *v;
    }
  }
  return 0;
}

double Value::to_numbar(bool explicit_cast) const {
  switch (type()) {
    case ast::TypeKind::kNoob:
      if (explicit_cast) return 0.0;
      throw RuntimeError("cannot implicitly cast NOOB to NUMBAR");
    case ast::TypeKind::kTroof:
      return troof_raw() ? 1.0 : 0.0;
    case ast::TypeKind::kNumbr:
      return static_cast<double>(numbr_raw());
    case ast::TypeKind::kNumbar:
      return numbar_raw();
    case ast::TypeKind::kYarn: {
      auto v = support::parse_numbar(yarn_raw());
      if (!v) {
        throw RuntimeError("cannot cast YARN \"" + yarn_raw() +
                           "\" to NUMBAR");
      }
      return *v;
    }
  }
  return 0.0;
}

std::string Value::to_yarn(bool explicit_cast) const {
  switch (type()) {
    case ast::TypeKind::kNoob:
      if (explicit_cast) return "";
      throw RuntimeError("cannot implicitly cast NOOB to YARN");
    case ast::TypeKind::kTroof:
      return troof_raw() ? "WIN" : "FAIL";
    case ast::TypeKind::kNumbr:
      return support::format_numbr(numbr_raw());
    case ast::TypeKind::kNumbar:
      return support::format_numbar(numbar_raw());
    case ast::TypeKind::kYarn:
      return yarn_raw();
  }
  return "";
}

Value Value::cast_to(ast::TypeKind t, bool explicit_cast) const {
  switch (t) {
    case ast::TypeKind::kNoob:
      return noob();
    case ast::TypeKind::kTroof:
      return troof(to_troof());
    case ast::TypeKind::kNumbr:
      return numbr(to_numbr(explicit_cast));
    case ast::TypeKind::kNumbar:
      return numbar(to_numbar(explicit_cast));
    case ast::TypeKind::kYarn:
      return yarn(to_yarn(explicit_cast));
  }
  return noob();
}

bool Value::saem(const Value& a, const Value& b) {
  if (a.type() == b.type()) return a == b;
  // NUMBR vs NUMBAR compare numerically.
  if (a.is_numbr() && b.is_numbar()) {
    return static_cast<double>(a.numbr_raw()) == b.numbar_raw();
  }
  if (a.is_numbar() && b.is_numbr()) {
    return a.numbar_raw() == static_cast<double>(b.numbr_raw());
  }
  return false;
}

std::string Value::debug_str() const {
  switch (type()) {
    case ast::TypeKind::kNoob:
      return "NOOB";
    case ast::TypeKind::kTroof:
      return std::string("TROOF:") + (troof_raw() ? "WIN" : "FAIL");
    case ast::TypeKind::kNumbr:
      return "NUMBR:" + support::format_numbr(numbr_raw());
    case ast::TypeKind::kNumbar:
      return "NUMBAR:" + support::format_numbar(numbar_raw());
    case ast::TypeKind::kYarn:
      return "YARN:\"" + yarn_raw() + "\"";
  }
  return "?";
}

}  // namespace lol::rt

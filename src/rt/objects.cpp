#include "rt/objects.hpp"

namespace lol::rt {

using support::RuntimeError;

Value sym_read(shmem::Pe& pe, const SymHandle& h, std::size_t idx,
               int target_pe) {
  int target = target_pe < 0 ? pe.id() : target_pe;
  std::size_t off = h.offset + idx * 8;
  switch (h.elem) {
    case ast::TypeKind::kNumbar:
      return Value::numbar(pe.get_f64(target, off));
    case ast::TypeKind::kTroof:
      return Value::troof(pe.get_i64(target, off) != 0);
    default:
      return Value::numbr(pe.get_i64(target, off));
  }
}

void sym_write(shmem::Pe& pe, const SymHandle& h, std::size_t idx,
               int target_pe, const Value& v) {
  int target = target_pe < 0 ? pe.id() : target_pe;
  std::size_t off = h.offset + idx * 8;
  switch (h.elem) {
    case ast::TypeKind::kNumbar:
      pe.put_f64(target, off, v.to_numbar());
      return;
    case ast::TypeKind::kTroof:
      pe.put_i64(target, off, v.to_troof() ? 1 : 0);
      return;
    default:
      pe.put_i64(target, off, v.to_numbr());
      return;
  }
}

void copy_arrays(shmem::Pe& pe, const ArrayLike& dst, int dst_pe,
                 const ArrayLike& src, int src_pe, support::SourceLoc loc) {
  std::size_t dst_n = dst.count();
  std::size_t src_n = src.count();
  if (dst_n != src_n) {
    throw RuntimeError("array copy size mismatch: destination has " +
                           std::to_string(dst_n) + " elements, source has " +
                           std::to_string(src_n),
                       loc);
  }

  if (dst.sym != nullptr && src.sym != nullptr &&
      dst.sym->elem == src.sym->elem) {
    int from = src_pe < 0 ? pe.id() : src_pe;
    int to = dst_pe < 0 ? pe.id() : dst_pe;
    std::vector<std::byte> tmp(dst_n * 8);
    pe.get(tmp.data(), from, src.sym->offset, tmp.size());
    pe.put(to, dst.sym->offset, tmp.data(), tmp.size());
    return;
  }

  for (std::size_t i = 0; i < dst_n; ++i) {
    Value v = src.sym != nullptr ? sym_read(pe, *src.sym, i, src_pe)
                                 : src.priv->elems[i];
    if (dst.sym != nullptr) {
      sym_write(pe, *dst.sym, i, dst_pe, v);
    } else {
      if (dst.priv->srsly) v = v.cast_to(dst.priv->elem, false);
      dst.priv->elems[i] = std::move(v);
    }
  }
}

}  // namespace lol::rt

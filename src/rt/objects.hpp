// Array/symmetric-object storage shared by the interpreter and the VM.
//
// Keeping the accessors here guarantees the two backends implement the
// paper's PGAS semantics identically: an 8-byte slot per element, local
// access through the PE's own arena, remote access through one-sided
// get/put against the predicated PE.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ast/types.hpp"
#include "rt/value.hpp"
#include "shmem/runtime.hpp"

namespace lol::rt {

/// A private (per-PE) array from `I HAS A x ITZ [SRSLY] LOTZ A ...`.
struct PrivateArray {
  ast::TypeKind elem = ast::TypeKind::kNumbr;
  bool srsly = false;  // statically typed elements
  std::vector<Value> elems;
};

/// A symmetric object from `WE HAS A ...`: identical offset on every PE's
/// symmetric heap; elements are fixed-width 8-byte slots.
struct SymHandle {
  int slot = -1;            // sema registry slot (program order)
  std::size_t offset = 0;   // byte offset in the symmetric heap
  ast::TypeKind elem = ast::TypeKind::kNumbr;
  std::size_t count = 1;    // 1 for scalars
  int lock_id = -1;         // global lock id when IM SHARIN IT
  bool is_array = false;
};

/// Reads element `idx` of a symmetric object. `target_pe < 0` means the
/// local PE; otherwise the one-sided read targets that PE's arena.
Value sym_read(shmem::Pe& pe, const SymHandle& h, std::size_t idx,
               int target_pe);

/// Writes element `idx` of a symmetric object (casting `v` to the element
/// type with implicit-cast rules).
void sym_write(shmem::Pe& pe, const SymHandle& h, std::size_t idx,
               int target_pe, const Value& v);

/// A view of "some array", private or symmetric, used by whole-array copy.
struct ArrayLike {
  PrivateArray* priv = nullptr;
  const SymHandle* sym = nullptr;

  [[nodiscard]] bool valid() const { return priv != nullptr || sym != nullptr; }
  [[nodiscard]] std::size_t count() const {
    return sym != nullptr ? sym->count : priv->elems.size();
  }
};

/// Whole-array copy (`MAH array R UR array`, paper §VI.A). Symmetric-to-
/// symmetric copies with matching element types move raw slots in one
/// get+put pair; everything else copies element-wise with casts.
/// `dst_pe`/`src_pe` are the resolved target PEs (< 0 = local).
void copy_arrays(shmem::Pe& pe, const ArrayLike& dst, int dst_pe,
                 const ArrayLike& src, int src_pe,
                 support::SourceLoc loc = {});

}  // namespace lol::rt

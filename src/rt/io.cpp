#include "rt/io.hpp"

#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#define LOL_HAVE_POLL 1
#endif

namespace lol::rt {

void StdioSink::emit(int pe, std::string_view text, bool err) {
  std::lock_guard<std::mutex> g(m_);
  std::ostream& os = err ? std::cerr : std::cout;
  if (!tag_pe_) {
    os << text;
    os.flush();
    return;
  }
  // Tag each line with the producing PE.
  std::string& pending = err ? pending_err_[pe] : pending_out_[pe];
  pending.append(text);
  std::size_t nl;
  while ((nl = pending.find('\n')) != std::string::npos) {
    os << "[pe" << pe << "] " << pending.substr(0, nl + 1);
    pending.erase(0, nl + 1);
  }
  os.flush();
}

void StdioSink::write(int pe, std::string_view text) {
  emit(pe, text, false);
}

void StdioSink::write_err(int pe, std::string_view text) {
  emit(pe, text, true);
}

std::optional<std::string> StdinInput::read_line(int /*pe*/) {
  std::lock_guard<std::mutex> g(m_);
  std::string line;
  if (!std::getline(std::cin, line)) return std::nullopt;
  return line;
}

TryRead StdinInput::try_read_line(int pe, std::chrono::milliseconds wait) {
#ifdef LOL_HAVE_POLL
  // Bounded wait so an abort (deadline, peer failure) can interrupt a PE
  // blocked in GIMMEH on a silent terminal/pipe. Buffered data in cin is
  // checked first — fd 0 may show nothing while the streambuf holds a
  // line. Once poll reports readable we fall through to the blocking
  // getline: line-buffered terminals and pipes deliver whole lines, so
  // it returns promptly.
  {
    std::unique_lock<std::mutex> g(m_, std::try_to_lock);
    if (!g.owns_lock()) {
      // Another PE is mid-read on the shared cursor; report a timeout
      // rather than queueing behind a possibly-forever-blocked reader.
      return {std::nullopt, true};
    }
    if (std::cin.rdbuf()->in_avail() > 0 || std::cin.eof()) {
      std::string line;
      if (!std::getline(std::cin, line)) return {std::nullopt, false};
      return {std::optional<std::string>(std::move(line)), false};
    }
  }
  pollfd pfd{STDIN_FILENO, POLLIN, 0};
  int pr = ::poll(&pfd, 1, static_cast<int>(wait.count()));
  if (pr <= 0) return {std::nullopt, true};
  return {read_line(pe), false};
#else
  return {read_line(pe), false};
#endif
}

}  // namespace lol::rt

#include "rt/io.hpp"

#include <iostream>

namespace lol::rt {

void StdioSink::emit(int pe, std::string_view text, bool err) {
  std::lock_guard<std::mutex> g(m_);
  std::ostream& os = err ? std::cerr : std::cout;
  if (!tag_pe_) {
    os << text;
    os.flush();
    return;
  }
  // Tag each line with the producing PE.
  std::string& pending = err ? pending_err_[pe] : pending_out_[pe];
  pending.append(text);
  std::size_t nl;
  while ((nl = pending.find('\n')) != std::string::npos) {
    os << "[pe" << pe << "] " << pending.substr(0, nl + 1);
    pending.erase(0, nl + 1);
  }
  os.flush();
}

void StdioSink::write(int pe, std::string_view text) {
  emit(pe, text, false);
}

void StdioSink::write_err(int pe, std::string_view text) {
  emit(pe, text, true);
}

std::optional<std::string> StdinInput::read_line(int /*pe*/) {
  std::lock_guard<std::mutex> g(m_);
  std::string line;
  if (!std::getline(std::cin, line)) return std::nullopt;
  return line;
}

}  // namespace lol::rt

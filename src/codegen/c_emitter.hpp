// Source-to-source translation: parallel LOLCODE -> C99.
//
// This is the artifact the paper actually describes (§II): `lcc`
// translates LOLCODE with the parallel extensions into C against an
// OpenSHMEM-shaped runtime, and the host C compiler produces the final
// executable. Our generated C targets the `lolrt_c.h` extern-"C" API
// (backed by the same shmem substrate the interpreter and VM use), with
// one twist that keeps single-process SPMD sound: all program state lives
// in a per-PE context struct rather than in C globals, so N PEs can run
// as N threads of one process exactly like `coprsh -np N` runs them on
// the Epiphany.
#pragma once

#include <string>

#include "ast/ast.hpp"
#include "sema/analyzer.hpp"

namespace lol::codegen {

/// Options controlling emission.
struct EmitOptions {
  std::string source_name = "<input>";  // for the banner comment

  /// Emit the C `main` calling lolrt_run_main (the standalone lcc
  /// executable flow). The in-process native backend turns this off and
  /// dlsym()s `lol_user_main` out of a shared object instead.
  bool emit_main = true;
};

/// Emits a self-contained C translation unit. The result defines
/// `void lol_user_main(lolrt_pe* pe)` plus any user functions, and can be
/// compiled with any C99 compiler given lolrt_c.h on the include path.
/// Throws support::SemaError for constructs that cannot be lowered.
std::string emit_c(const ast::Program& program,
                   const sema::Analysis& analysis,
                   const EmitOptions& opts = {});

}  // namespace lol::codegen

// Lowers VM bytecode to x86-64 machine code. Two tiers share one code
// object:
//
// Tier 1 — call-threading: each bytecode instruction becomes a short
// machine-code block that calls the per-opcode helper (jit_runtime.cpp)
// with its operands baked in as immediates, so every op executes the exact
// same C++ the VM's dispatch loop runs — byte-identical output, step
// accounting, replay scheduling and fault injection by construction. What
// the JIT removes is the fetch/decode/dispatch: jumps become machine
// jumps, LOLCODE calls become machine calls, and a cold "compile" is just
// this emitter plus an mmap — no fork/exec of a host toolchain.
//
// Tier 2 — type-specialized regions (jit_analysis.hpp): pc ranges whose
// ops provably work on NUMBR/NUMBAR/TROOF payloads compile to raw machine
// arithmetic with the virtual stack and hot locals held in registers — no
// Value boxing, no helper call. The generic block at a region's entry pc
// starts with a jump into the specialized body; runtime type guards
// deopt back to the generic blocks (entry + 5, skipping that jump), and
// region exits materialize live registers onto the VM stack before
// falling into the generic tier. Step accounting runs in per-basic-block
// batches against a fuel counter so budgets, abort polls, fault steps
// and replay schedules stay VM-exact (see emit_spec_segment_check).
//
// ABI and register plan (SysV x86-64):
//   rbx — the vm::Vm* for this PE (callee-saved, survives helper calls)
//   r12 — rsp snapshot from the prologue; the epilogue restores it, which
//         safely discards any nested JIT frames when a helper threw
//   r13 — the JitSpecEnv* (step counters, PE identity, spill bank)
//   r14 — specialized-tier step fuel: inline-chargeable steps left before
//         the next jit_spec_slow() call must re-derive the budget
//   r15/rbp — register homes for the two hottest integer locals in a
//         specialized region (assigned by the linear scan)
//   r8-r11 / xmm0-xmm3 — virtual-stack registers, relative depth 0-3
//   entry signature: void (*)(vm::Vm*, JitSpecEnv*)
//
// Helpers return <0 after catching a C++ exception (stashed in a
// thread-local, rethrown by the wrapper in jit_backend.cpp); every call
// site tests the sign and bails to the epilogue. JIT frames contain no
// destructors, so skipping them is sanitizer-clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "vm/chunk.hpp"

namespace lol::vm {
class Vm;
}
namespace lol::rt {
struct ExecContext;
}

namespace lol::codegen {

/// One per-opcode helper: (vm, a, b, c) -> status. Status >= 0 is the
/// op-specific result (branch taken for kJumpIfFalse), < 0 means a C++
/// exception was caught and parked in detail::jit_pending().
using JitHelperFn = std::int32_t (*)(vm::Vm*, std::int32_t, std::int32_t,
                                     std::int32_t);

/// Helper table indexed by static_cast<std::size_t>(vm::Op). Defined in
/// jit_runtime.cpp next to the helper bodies.
const JitHelperFn* jit_helper_table();

/// Addresses of the typed kBinary fast-path preps (jit_runtime.cpp),
/// embedded by the emitter as movabs immediates. SysV struct returns:
/// the NUMBR prep yields {lhs-ptr, rhs} in rax:rdx, the NUMBAR prep
/// lhs-ptr in rax with rhs in xmm0. A zero lhs means the operands were
/// not both that type (no step charged — the emitted code falls back to
/// the generic kBinary helper); -1 means the prep threw and parked the
/// exception like any helper.
std::uint64_t jit_binfast_numbr_addr();
std::uint64_t jit_binfast_numbar_addr();

namespace detail {
/// The exception a helper caught on this thread, awaiting rethrow.
std::exception_ptr& jit_pending();
}  // namespace detail

/// Per-run environment the emitted code keeps in r13. The backend fills
/// one per PE entry; the spill bank (one quad per virtual-stack slot and
/// per tracked local, jit_analysis.hpp) follows the struct in the same
/// allocation at kJitEnvBankOffset. Field offsets are baked into emitted
/// displacements — append-only.
struct JitSpecEnv {
  rt::ExecContext* ctx = nullptr;  // @0  step/abort/fault counters
  std::int64_t me = 0;             // @8  PE id (kMe without a helper)
  std::int64_t n_pes = 0;          // @16 gang size (kMahFrenz)
  std::uint64_t spec_ops = 0;      // @24 ops retired by specialized code
  std::uint64_t deopts = 0;        // @32 region-entry guard failures
  std::uint64_t reserved = 0;      // @40 keeps the bank 16-byte aligned
};
inline constexpr std::size_t kJitEnvBankOffset = 48;
static_assert(sizeof(JitSpecEnv) == kJitEnvBankOffset);

/// Upper bound on bank quads any region may need (8 virtual-stack slots
/// + tracked locals, capped in jit_analysis.cpp). The backend sizes the
/// env allocation with this so emitted displacements can never overrun.
inline constexpr std::size_t kJitSpecMaxBank = 40;

/// Entry-point signature at offset 0 of the emitted code.
using JitEntryFn = void (*)(vm::Vm*, JitSpecEnv*);

/// Addresses of the specialized tier's runtime calls (jit_runtime.cpp),
/// embedded as movabs immediates. Same exception discipline as the
/// per-opcode helpers: a negative status (or, for jit_spec_slow, a
/// negative fuel) means "parked, bail to the epilogue".
struct JitSpecHelpers {
  std::uint64_t slow = 0;       // i64(Vm*, JitSpecEnv*, i64 k) -> fuel
  std::uint64_t guard = 0;      // i32(Vm*, i32 slot, i32 kind, i64* bank)
  std::uint64_t arr_load_i = 0; // {i64 status, i64 v}(Vm*, i32, i64)
  std::uint64_t arr_load_d = 0; // {i64 status, f64 v}(Vm*, i32, i64)
  std::uint64_t arr_store_i = 0;// i32(Vm*, i32 slot, i64 idx, i64 v)
  std::uint64_t arr_store_d = 0;// i32(Vm*, i32 slot, i64 idx, f64 v)
  std::uint64_t push = 0;       // i32(Vm*, i64 bits, i32 type)
  std::uint64_t wb_store = 0;   // i32(Vm*, i32 slot, i64 bits, i32 type)
  std::uint64_t wb_decl = 0;    // i32(Vm*, i32 decl, i64 bits, i32 type)
  std::uint64_t wb_unbind = 0;  // i32(Vm*, i32 slot)
  std::uint64_t wb_it = 0;      // i32(Vm*, i64 bits, i32 type)
};
const JitSpecHelpers& jit_spec_helpers();

struct JitEmitOptions {
  bool specialize = true;    // build tier-2 regions (LOL_JIT_SPEC)
  std::string* dump = nullptr;  // receives the annotated region listing
};

struct JitEmitInfo {
  std::int32_t bank_slots = 0;   // env bank quads the code needs
  std::uint64_t regions = 0;     // specialized regions emitted
  std::uint64_t spec_pcs = 0;    // bytecode pcs covered by those regions
};

/// Emits position-independent x86-64 for `chunk` into `out`. The code's
/// entry point is offset 0 with signature JitEntryFn. Returns false
/// with `error` set when the chunk cannot be lowered.
bool emit_chunk_x86_64(const vm::Chunk& chunk, const JitEmitOptions& opts,
                       std::vector<std::uint8_t>* out, std::string* error,
                       JitEmitInfo* info);

/// Deterministic binary serialization of a chunk, used as the JIT code
/// cache key: identical bytecode => identical key => one emitted program.
std::string chunk_cache_key(const vm::Chunk& chunk);

}  // namespace lol::codegen

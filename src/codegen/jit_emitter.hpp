// Lowers VM bytecode to x86-64 machine code.
//
// The scheme is call-threading: each bytecode instruction becomes a short
// machine-code block that calls the per-opcode helper (jit_runtime.cpp)
// with its operands baked in as immediates, so every op executes the exact
// same C++ the VM's dispatch loop runs — byte-identical output, step
// accounting, replay scheduling and fault injection by construction. What
// the JIT removes is the fetch/decode/dispatch: jumps become machine
// jumps, LOLCODE calls become machine calls, and a cold "compile" is just
// this emitter plus an mmap — no fork/exec of a host toolchain.
//
// ABI and register plan (SysV x86-64):
//   rbx — the vm::Vm* for this PE (callee-saved, survives helper calls)
//   r12 — rsp snapshot from the prologue; the epilogue restores it, which
//         safely discards any nested JIT frames when a helper threw
//   entry signature: void (*)(vm::Vm*)
//
// Helpers return <0 after catching a C++ exception (stashed in a
// thread-local, rethrown by the wrapper in jit_backend.cpp); every call
// site tests the sign and bails to the epilogue. JIT frames contain no
// destructors, so skipping them is sanitizer-clean.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "vm/chunk.hpp"

namespace lol::vm {
class Vm;
}

namespace lol::codegen {

/// One per-opcode helper: (vm, a, b, c) -> status. Status >= 0 is the
/// op-specific result (branch taken for kJumpIfFalse), < 0 means a C++
/// exception was caught and parked in detail::jit_pending().
using JitHelperFn = std::int32_t (*)(vm::Vm*, std::int32_t, std::int32_t,
                                     std::int32_t);

/// Helper table indexed by static_cast<std::size_t>(vm::Op). Defined in
/// jit_runtime.cpp next to the helper bodies.
const JitHelperFn* jit_helper_table();

/// Addresses of the typed kBinary fast-path preps (jit_runtime.cpp),
/// embedded by the emitter as movabs immediates. SysV struct returns:
/// the NUMBR prep yields {lhs-ptr, rhs} in rax:rdx, the NUMBAR prep
/// lhs-ptr in rax with rhs in xmm0. A zero lhs means the operands were
/// not both that type (no step charged — the emitted code falls back to
/// the generic kBinary helper); -1 means the prep threw and parked the
/// exception like any helper.
std::uint64_t jit_binfast_numbr_addr();
std::uint64_t jit_binfast_numbar_addr();

namespace detail {
/// The exception a helper caught on this thread, awaiting rethrow.
std::exception_ptr& jit_pending();
}  // namespace detail

/// Emits position-independent x86-64 for `chunk` into `out`. The code's
/// entry point is offset 0 with signature void(vm::Vm*). Returns false
/// with `error` set when the chunk cannot be lowered.
bool emit_chunk_x86_64(const vm::Chunk& chunk, std::vector<std::uint8_t>* out,
                       std::string* error);

/// Deterministic binary serialization of a chunk, used as the JIT code
/// cache key: identical bytecode => identical key => one emitted program.
std::string chunk_cache_key(const vm::Chunk& chunk);

}  // namespace lol::codegen

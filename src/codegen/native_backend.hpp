// In-process native execution of lcc-generated code (Backend::kNative).
//
// The paper's deployment compiles LOLCODE to C and runs the executable
// under `coprsh -np N`; this module runs the same generated C *inside*
// the engine: emit C → host cc (-shared -fPIC) → dlopen → call
// lol_user_main once per PE on the engine's own shmem::Runtime. Because
// the generated code charges steps through lolrt_step and performs IO
// through the shared rt::ExecContext, every RunConfig control behaves
// exactly as it does on the interpreter and VM backends:
//
//   * max_steps kills a runaway PE with support::StepLimitError
//   * an AbortToken (Service deadline reaper, cancel()) interrupts
//     compute loops, locks, barriers and GIMMEH within a bounded wait
//   * sink/input/seed/machine plumb through unchanged
//
// which is what lets the Service enforce deadlines and cancellation on
// native jobs, and the differential suite compare all three backends
// byte for byte.
//
// Requirements: a POSIX dlopen and a host C compiler ($CC, else `cc`).
// The embedding executable must export the lolrt_* symbols for the
// dlopen()ed object to resolve against (CMake ENABLE_EXPORTS /
// -rdynamic); every executable in this repo is built that way.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "ast/ast.hpp"
#include "codegen/lolrt_c.h"
#include "sema/analyzer.hpp"

namespace lol::rt {
struct ExecContext;
}

namespace lol::codegen {

/// True when the native backend can run here: the platform has dlopen
/// and the host C compiler answers a probe. Memoized; cheap after the
/// first call. When false, Backend::kNative runs fail with an
/// explanatory RunResult error instead of crashing.
bool native_available();

/// The host C compiler the native backend shells out to ($CC, else cc).
std::string native_cc();

/// The per-process private scratch directory (mkdtemp, mode 0700) that
/// holds the backend's transient .c/.so/.log files. Created on first
/// use; empty string when creation failed (builds then error out).
const std::string& native_scratch_dir();

/// Decodes the wait status std::system returned for the compile command
/// into a human diagnostic: spawn failure (-1), death by signal (e.g.
/// the OOM killer) and a nonzero compiler exit all read differently.
std::string describe_cc_failure(int wait_status);

/// A loaded native translation of one program: the dlopen()ed shared
/// object plus its lol_user_main entry point. Immutable and shareable
/// across concurrent runs — all mutable execution state lives in the
/// per-PE contexts handed to run_native_pe.
class NativeProgram {
 public:
  NativeProgram(const NativeProgram&) = delete;
  NativeProgram& operator=(const NativeProgram&) = delete;
  ~NativeProgram();

  [[nodiscard]] lolrt_main_fn entry() const { return entry_; }

  /// Emits C for `program`, compiles it with the host cc and dlopens
  /// the result. Process-wide cache keyed by the generated C text, so
  /// repeated runs of one source (service retries, differential sweeps,
  /// --repeat batches) reuse the loaded object instead of re-invoking
  /// the compiler. Returns null and fills `error` on any failure: no
  /// host cc, an unsupported construct (SRS), cc diagnostics, or a
  /// dlopen/dlsym problem.
  static std::shared_ptr<const NativeProgram> get_or_build(
      const ast::Program& program, const sema::Analysis& analysis,
      std::string* error);

 private:
  NativeProgram() = default;

  void* handle_ = nullptr;          // dlopen handle
  lolrt_main_fn entry_ = nullptr;   // lol_user_main in the loaded object
};

/// Per-CompiledProgram memo of the loaded native translation. Created
/// empty by lol::compile and filled under its own lock on the first
/// Backend::kNative run, so warm runs (service workers sharing one
/// cached CompiledProgram, --repeat batches) skip C emission entirely.
/// The process-wide cache inside get_or_build still deduplicates across
/// distinct CompiledProgram instances of the same source; this slot
/// removes the per-run emit cost of computing that cache's key. Build
/// failures are not memoized — they are rare and stay re-attemptable.
struct NativeSlot {
  std::mutex m;
  std::shared_ptr<const NativeProgram> prog;
};

/// Runs one PE of a native program against the shared ExecContext,
/// translating the lolrt longjmp error discipline back into the engine's
/// exceptions (support::StepLimitError / support::RuntimeError). Defined
/// in lolrt_c.cpp, which owns the lolrt_pe internals.
void run_native_pe(lolrt_main_fn fn, rt::ExecContext& ctx);

}  // namespace lol::codegen

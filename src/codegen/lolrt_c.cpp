// Implementation of the C runtime API (lolrt_c.h), bridging generated C
// to the shared C++ substrate (rt::Value semantics + shmem runtime).
//
// Error discipline: C++ exceptions cannot unwind through the generated C
// frames, so every API function catches at the boundary, stores the
// message in the PE context, and longjmps back to the launcher once no
// nontrivially-destructible locals remain live.
#include "codegen/lolrt_c.h"

#include <atomic>
#include <cmath>
#include <csetjmp>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "codegen/native_backend.hpp"
#include "rt/exec_context.hpp"
#include "rt/io.hpp"
#include "rt/objects.hpp"
#include "rt/ops.hpp"
#include "rt/value.hpp"
#include "shmem/runtime.hpp"
#include "support/rng.hpp"

// The per-PE context behind every generated call. All execution services
// (shmem handle, RNG, IO, step budget, abort poll) come from the same
// rt::ExecContext the interpreter and VM run against — that sharing is
// what makes the three backends one semantics, budget included.
struct lolrt_pe {
  lol::rt::ExecContext* ctx = nullptr;

  std::deque<std::string> yarn_arena;          // stable c_str storage
  std::vector<std::unique_ptr<char[]>> allocs; // lolrt_alloc blocks
  std::vector<int> bff;
  void* user = nullptr;

  std::jmp_buf jb;
  char err[512] = {0};
  bool failed = false;
  bool step_limited = false;  // the failure was an exhausted step budget
  bool pe_killed = false;     // the failure was injected (PeKilledError)
  unsigned long long killed_step = 0;
};

namespace {

using lol::rt::Value;

void store_err(lolrt_pe* pe, const char* msg) {
  std::snprintf(pe->err, sizeof pe->err, "%s", msg);
  pe->failed = true;
}

[[noreturn]] void jump_out(lolrt_pe* pe) { std::longjmp(pe->jb, 1); }

/// Converts a C lolv to the shared C++ value.
Value to_value(const lolv& v) {
  switch (v.t) {
    case LOLV_TROOF:
      return Value::troof(v.i != 0);
    case LOLV_NUMBR:
      return Value::numbr(v.i);
    case LOLV_NUMBAR:
      return Value::numbar(v.f);
    case LOLV_YARN:
      return Value::yarn(v.s != nullptr ? v.s : "");
    default:
      return Value::noob();
  }
}

const char* intern(lolrt_pe* pe, std::string s) {
  pe->yarn_arena.push_back(std::move(s));
  return pe->yarn_arena.back().c_str();
}

/// Converts a C++ value to C (interning YARN payloads).
lolv from_value(lolrt_pe* pe, const Value& v) {
  lolv out{LOLV_NOOB, 0, 0.0, nullptr};
  switch (v.type()) {
    case lol::ast::TypeKind::kNoob:
      break;
    case lol::ast::TypeKind::kTroof:
      out.t = LOLV_TROOF;
      out.i = v.troof_raw() ? 1 : 0;
      break;
    case lol::ast::TypeKind::kNumbr:
      out.t = LOLV_NUMBR;
      out.i = v.numbr_raw();
      break;
    case lol::ast::TypeKind::kNumbar:
      out.t = LOLV_NUMBAR;
      out.f = v.numbar_raw();
      break;
    case lol::ast::TypeKind::kYarn:
      out.t = LOLV_YARN;
      out.s = intern(pe, v.yarn_raw());
      break;
  }
  return out;
}

lol::ast::TypeKind elem_kind(int elem) {
  switch (elem) {
    case LOLV_NUMBAR:
      return lol::ast::TypeKind::kNumbar;
    case LOLV_TROOF:
      return lol::ast::TypeKind::kTroof;
    default:
      return lol::ast::TypeKind::kNumbr;
  }
}

lol::ast::TypeKind cast_kind(int type) {
  switch (type) {
    case LOLV_NOOB:
      return lol::ast::TypeKind::kNoob;
    case LOLV_TROOF:
      return lol::ast::TypeKind::kTroof;
    case LOLV_NUMBR:
      return lol::ast::TypeKind::kNumbr;
    case LOLV_NUMBAR:
      return lol::ast::TypeKind::kNumbar;
    default:
      return lol::ast::TypeKind::kYarn;
  }
}

long long check_idx(long long idx, long long n) {
  if (idx < 0 || idx >= n) {
    throw lol::support::RuntimeError(
        "array index " + std::to_string(idx) + " out of bounds [0, " +
        std::to_string(n) + ")");
  }
  return idx;
}

int bff_target(lolrt_pe* pe, int remote) {
  if (!remote) return -1;
  if (pe->bff.empty()) {
    throw lol::support::RuntimeError(
        "UR reference outside TXT MAH BFF predication: no remote PE is "
        "selected");
  }
  return pe->bff.back();
}

lol::rt::SymHandle make_handle(size_t off, long long count, int elem) {
  lol::rt::SymHandle h;
  h.offset = off;
  h.count = static_cast<std::size_t>(count);
  h.elem = elem_kind(elem);
  h.is_array = count > 1;
  return h;
}

}  // namespace

// Every API body runs inside this bracket: exceptions are converted into
// a stored message + longjmp after the try block has fully unwound. A
// StepLimitError (thrown by ExecContext::count_step in lolrt_step) is
// flagged so the launcher can classify the failure distinctly from
// ordinary runtime errors.
#define LOLRT_TRY try {
#define LOLRT_END(pe)                                 \
  }                                                   \
  catch (const lol::support::StepLimitError& e) {     \
    (pe)->step_limited = true;                        \
    store_err((pe), e.what());                        \
  }                                                   \
  catch (const lol::support::PeKilledError& e) {      \
    (pe)->pe_killed = true;                           \
    (pe)->killed_step = e.step();                     \
    store_err((pe), e.what());                        \
  }                                                   \
  catch (const std::exception& e) {                   \
    store_err((pe), e.what());                        \
  }                                                   \
  catch (...) {                                       \
    store_err((pe), "unknown runtime error");         \
  }                                                   \
  jump_out(pe);

extern "C" {

lolv lolrt_noob(void) { return lolv{LOLV_NOOB, 0, 0.0, nullptr}; }
lolv lolrt_troof(long long b) {
  return lolv{LOLV_TROOF, b != 0 ? 1 : 0, 0.0, nullptr};
}
lolv lolrt_numbr(long long v) { return lolv{LOLV_NUMBR, v, 0.0, nullptr}; }
lolv lolrt_numbar(double v) { return lolv{LOLV_NUMBAR, 0, v, nullptr}; }

lolv lolrt_yarn(lolrt_pe* pe, const char* s) {
  return lolv{LOLV_YARN, 0, 0.0, s != nullptr ? intern(pe, s) : ""};
}

lolv lolrt_binary(lolrt_pe* pe, int op, lolv a, lolv b) {
  LOLRT_TRY
  return from_value(pe, lol::rt::op_binary(static_cast<lol::ast::BinOp>(op),
                                           to_value(a), to_value(b)));
  LOLRT_END(pe)
}

lolv lolrt_unary(lolrt_pe* pe, int op, lolv a) {
  LOLRT_TRY
  return from_value(
      pe, lol::rt::op_unary(static_cast<lol::ast::UnOp>(op), to_value(a)));
  LOLRT_END(pe)
}

lolv lolrt_nary(lolrt_pe* pe, int op, int n, const lolv* xs) {
  LOLRT_TRY
  std::vector<Value> vals;
  vals.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) vals.push_back(to_value(xs[i]));
  return from_value(
      pe, lol::rt::op_nary(static_cast<lol::ast::NaryOp>(op), vals));
  LOLRT_END(pe)
}

lolv lolrt_cast(lolrt_pe* pe, lolv v, int type, int is_explicit) {
  LOLRT_TRY
  return from_value(pe, to_value(v).cast_to(cast_kind(type),
                                            is_explicit != 0));
  LOLRT_END(pe)
}

long long lolrt_truthy(lolv v) { return to_value(v).to_troof() ? 1 : 0; }

long long lolrt_to_i64(lolrt_pe* pe, lolv v) {
  LOLRT_TRY
  return to_value(v).to_numbr();
  LOLRT_END(pe)
}

double lolrt_to_f64(lolrt_pe* pe, lolv v) {
  LOLRT_TRY
  return to_value(v).to_numbar();
  LOLRT_END(pe)
}

const char* lolrt_to_str(lolrt_pe* pe, lolv v) {
  LOLRT_TRY
  return intern(pe, to_value(v).to_yarn());
  LOLRT_END(pe)
}

long long lolrt_saem(lolv a, lolv b) {
  return Value::saem(to_value(a), to_value(b)) ? 1 : 0;
}

long long lolrt_idiv(lolrt_pe* pe, long long a, long long b) {
  if (b == 0) {
    store_err(pe, "QUOSHUNT OF: division by zero");
    jump_out(pe);
  }
  return a / b;
}

long long lolrt_imod(lolrt_pe* pe, long long a, long long b) {
  if (b == 0) {
    store_err(pe, "MOD OF: modulo by zero");
    jump_out(pe);
  }
  return a % b;
}

double lolrt_fdiv(lolrt_pe* pe, double a, double b) {
  if (b == 0.0) {
    store_err(pe, "QUOSHUNT OF: division by zero");
    jump_out(pe);
  }
  return a / b;
}

double lolrt_fmod2(lolrt_pe* pe, double a, double b) {
  if (b == 0.0) {
    store_err(pe, "MOD OF: modulo by zero");
    jump_out(pe);
  }
  return std::fmod(a, b);
}

double lolrt_sqrt2(lolrt_pe* pe, double x) {
  if (x < 0.0) {
    store_err(pe, "UNSQUAR OF: negative operand has no NUMBAR root");
    jump_out(pe);
  }
  return std::sqrt(x);
}

double lolrt_flip2(lolrt_pe* pe, double x) {
  if (x == 0.0) {
    store_err(pe, "FLIP OF: reciprocal of zero");
    jump_out(pe);
  }
  return 1.0 / x;
}

void lolrt_visible(lolrt_pe* pe, int n, const lolv* xs, int newline,
                   int to_stderr) {
  LOLRT_TRY
  std::string text;
  for (int i = 0; i < n; ++i) text += to_value(xs[i]).to_yarn();
  if (newline) text += '\n';
  if (to_stderr) {
    pe->ctx->out->write_err(pe->ctx->pe->id(), text);
  } else {
    pe->ctx->out->write(pe->ctx->pe->id(), text);
  }
  return;
  LOLRT_END(pe)
}

lolv lolrt_gimmeh(lolrt_pe* pe) {
  LOLRT_TRY
  // ExecContext::read_line polls the input source with a bounded wait, so
  // an external abort interrupts native code blocked on input exactly as
  // it does on the interpreter and VM backends.
  auto line = pe->ctx->read_line();
  return from_value(pe, Value::yarn(line.value_or("")));
  LOLRT_END(pe)
}

void lolrt_step(lolrt_pe* pe) {
  LOLRT_TRY
  pe->ctx->count_step();
  return;
  LOLRT_END(pe)
}

long long lolrt_me(lolrt_pe* pe) { return pe->ctx->pe->id(); }
long long lolrt_n_pes(lolrt_pe* pe) { return pe->ctx->pe->n_pes(); }

void lolrt_hugz(lolrt_pe* pe) {
  LOLRT_TRY
  pe->ctx->pe->barrier_all();
  return;
  LOLRT_END(pe)
}

long long lolrt_whatevr(lolrt_pe* pe) {
  LOLRT_TRY
  return pe->ctx->rng_numbr();
  LOLRT_END(pe)
}
double lolrt_whatevar(lolrt_pe* pe) {
  LOLRT_TRY
  return pe->ctx->rng_numbar();
  LOLRT_END(pe)
}

void lolrt_lock(lolrt_pe* pe, int lock_id) {
  LOLRT_TRY
  pe->ctx->pe->set_lock(lock_id);
  return;
  LOLRT_END(pe)
}

long long lolrt_trylock(lolrt_pe* pe, int lock_id) {
  LOLRT_TRY
  return pe->ctx->pe->test_lock(lock_id) ? 1 : 0;
  LOLRT_END(pe)
}

void lolrt_unlock(lolrt_pe* pe, int lock_id) {
  LOLRT_TRY
  pe->ctx->pe->clear_lock(lock_id);
  return;
  LOLRT_END(pe)
}

size_t lolrt_shmalloc(lolrt_pe* pe, long long slots) {
  LOLRT_TRY
  if (slots <= 0) {
    throw lol::support::RuntimeError("array size must be positive, got " +
                                     std::to_string(slots));
  }
  return pe->ctx->pe->shmalloc(static_cast<std::size_t>(slots) * 8);
  LOLRT_END(pe)
}

lolv lolrt_sym_load(lolrt_pe* pe, size_t off, long long count, int elem,
                    long long idx, int remote) {
  LOLRT_TRY
  lol::rt::SymHandle h = make_handle(off, count, elem);
  long long i = check_idx(idx, count);
  return from_value(pe, lol::rt::sym_read(*pe->ctx->pe, h,
                                          static_cast<std::size_t>(i),
                                          bff_target(pe, remote)));
  LOLRT_END(pe)
}

void lolrt_sym_store(lolrt_pe* pe, size_t off, long long count, int elem,
                     long long idx, int remote, lolv v) {
  LOLRT_TRY
  lol::rt::SymHandle h = make_handle(off, count, elem);
  long long i = check_idx(idx, count);
  lol::rt::sym_write(*pe->ctx->pe, h, static_cast<std::size_t>(i),
                     bff_target(pe, remote), to_value(v));
  return;
  LOLRT_END(pe)
}

double lolrt_sym_load_f64(lolrt_pe* pe, size_t off, long long count,
                          long long idx, int remote) {
  LOLRT_TRY
  long long i = check_idx(idx, count);
  int target = bff_target(pe, remote);
  return pe->ctx->pe->get_f64(target < 0 ? pe->ctx->pe->id() : target,
                         off + static_cast<std::size_t>(i) * 8);
  LOLRT_END(pe)
}

void lolrt_sym_store_f64(lolrt_pe* pe, size_t off, long long count,
                         long long idx, int remote, double v) {
  LOLRT_TRY
  long long i = check_idx(idx, count);
  int target = bff_target(pe, remote);
  pe->ctx->pe->put_f64(target < 0 ? pe->ctx->pe->id() : target,
                  off + static_cast<std::size_t>(i) * 8, v);
  return;
  LOLRT_END(pe)
}

long long lolrt_sym_load_i64(lolrt_pe* pe, size_t off, long long count,
                             long long idx, int remote) {
  LOLRT_TRY
  long long i = check_idx(idx, count);
  int target = bff_target(pe, remote);
  return pe->ctx->pe->get_i64(target < 0 ? pe->ctx->pe->id() : target,
                         off + static_cast<std::size_t>(i) * 8);
  LOLRT_END(pe)
}

void lolrt_sym_store_i64(lolrt_pe* pe, size_t off, long long count,
                         long long idx, int remote, long long v) {
  LOLRT_TRY
  long long i = check_idx(idx, count);
  int target = bff_target(pe, remote);
  pe->ctx->pe->put_i64(target < 0 ? pe->ctx->pe->id() : target,
                  off + static_cast<std::size_t>(i) * 8, v);
  return;
  LOLRT_END(pe)
}

void lolrt_sym_copy(lolrt_pe* pe, size_t dst_off, int dst_remote,
                    size_t src_off, int src_remote, long long slots) {
  LOLRT_TRY
  int src = bff_target(pe, src_remote);
  int dst = bff_target(pe, dst_remote);
  std::vector<std::byte> tmp(static_cast<std::size_t>(slots) * 8);
  pe->ctx->pe->get(tmp.data(), src < 0 ? pe->ctx->pe->id() : src, src_off, tmp.size());
  pe->ctx->pe->put(dst < 0 ? pe->ctx->pe->id() : dst, dst_off, tmp.data(), tmp.size());
  return;
  LOLRT_END(pe)
}

void lolrt_bff_push(lolrt_pe* pe, long long target) {
  LOLRT_TRY
  if (target < 0 || target >= pe->ctx->pe->n_pes()) {
    throw lol::support::RuntimeError(
        "TXT MAH BFF " + std::to_string(target) +
        ": no such PE (MAH FRENZ = " + std::to_string(pe->ctx->pe->n_pes()) + ")");
  }
  pe->bff.push_back(static_cast<int>(target));
  return;
  LOLRT_END(pe)
}

void lolrt_bff_pop(lolrt_pe* pe, int n) {
  std::size_t k = static_cast<std::size_t>(n);
  pe->bff.resize(k > pe->bff.size() ? 0 : pe->bff.size() - k);
}

long long lolrt_bff_depth(lolrt_pe* pe) {
  return static_cast<long long>(pe->bff.size());
}

void lolrt_bff_reset(lolrt_pe* pe, long long depth) {
  if (depth >= 0 && static_cast<std::size_t>(depth) <= pe->bff.size()) {
    pe->bff.resize(static_cast<std::size_t>(depth));
  }
}

void* lolrt_alloc(lolrt_pe* pe, size_t bytes) {
  LOLRT_TRY
  auto block = std::make_unique<char[]>(bytes);
  std::memset(block.get(), 0, bytes);
  pe->allocs.push_back(std::move(block));
  return pe->allocs.back().get();
  LOLRT_END(pe)
}

long long lolrt_idx(lolrt_pe* pe, long long idx, long long n) {
  if (idx < 0 || idx >= n) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "array index %lld out of bounds [0, %lld)", idx, n);
    store_err(pe, buf);
    jump_out(pe);
  }
  return idx;
}

void lolrt_arr_fill(lolrt_pe* pe, lolv* arr, long long n, int elem) {
  (void)pe;
  lolv zero;
  switch (elem) {
    case LOLV_NUMBAR:
      zero = lolrt_numbar(0.0);
      break;
    case LOLV_TROOF:
      zero = lolrt_troof(0);
      break;
    case LOLV_YARN:
      zero = lolv{LOLV_YARN, 0, 0.0, ""};
      break;
    case LOLV_NOOB:
      zero = lolrt_noob();
      break;
    default:
      zero = lolrt_numbr(0);
  }
  for (long long i = 0; i < n; ++i) arr[i] = zero;
}

void lolrt_set_user(lolrt_pe* pe, void* p) { pe->user = p; }
void* lolrt_user(lolrt_pe* pe) { return pe->user; }

void lolrt_fail(lolrt_pe* pe, const char* msg) {
  store_err(pe, msg);
  jump_out(pe);
}

int lolrt_run_main(int argc, char** argv, lolrt_main_fn fn, int n_locks) {
  int n_pes = 1;
  unsigned long long seed = 20170529ULL;
  unsigned long long max_steps = 0;  // 0 = unlimited
  size_t heap = 1 << 20;
  bool tag = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if ((arg == "-np" || arg == "--np") && i + 1 < argc) {
      n_pes = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--heap" && i + 1 < argc) {
      heap = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-steps" && i + 1 < argc) {
      max_steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--tag") {
      tag = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [-np N] [--seed S] [--heap B] [--max-steps S] "
                   "[--tag]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_pes < 1) {
    std::fprintf(stderr, "error: -np must be >= 1\n");
    return 2;
  }

  lol::shmem::Config cfg;
  cfg.n_pes = n_pes;
  cfg.heap_bytes = heap;
  cfg.n_locks = n_locks;
  lol::shmem::Runtime runtime(cfg);
  lol::rt::StdioSink sink(tag);
  lol::rt::StdinInput input;

  std::atomic<bool> step_limited{false};
  lol::shmem::LaunchResult lr = runtime.launch([&](lol::shmem::Pe& pe) {
    lol::rt::ExecContext ctx(pe, seed, sink, input, max_steps);
    try {
      lol::codegen::run_native_pe(fn, ctx);
    } catch (const lol::support::StepLimitError&) {
      step_limited.store(true, std::memory_order_relaxed);
      throw;  // launch captures it as this PE's error and aborts peers
    }
  });

  if (!lr.ok) {
    for (const auto& e : lr.errors) {
      if (!e.empty()) std::fprintf(stderr, "error: %s\n", e.c_str());
    }
    // Distinguishable status for a program killed by its step budget
    // (mirrors JobStatus::kStepLimit in the service layer).
    return step_limited.load(std::memory_order_relaxed) ? 3 : 1;
  }
  return 0;
}

} /* extern "C" */

namespace lol::codegen {

// Bridges one PE of generated C onto an engine-owned ExecContext. The
// lolrt_pe is constructed before setjmp and only read after the longjmp
// returns, matching the discipline lolrt_run_main always used; the
// stored failure is rethrown as the exception type the engine (and the
// Service's status classification) expects.
void run_native_pe(lolrt_main_fn fn, lol::rt::ExecContext& ctx) {
  lolrt_pe pe_ctx;
  pe_ctx.ctx = &ctx;
  if (setjmp(pe_ctx.jb) == 0) {
    fn(&pe_ctx);
  }
  if (pe_ctx.failed) {
    if (pe_ctx.step_limited) {
      throw lol::support::StepLimitError(ctx.max_steps);
    }
    if (pe_ctx.pe_killed) {
      throw lol::support::PeKilledError(
          ctx.pe->id(), static_cast<std::uint64_t>(pe_ctx.killed_step));
    }
    throw lol::support::RuntimeError(pe_ctx.err);
  }
}

}  // namespace lol::codegen

#include "codegen/jit_memory.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define LOL_JIT_HAVE_MMAP 1
#else
#define LOL_JIT_HAVE_MMAP 0
#endif

namespace lol::codegen {

ExecMem::~ExecMem() { release(); }

ExecMem::ExecMem(ExecMem&& other) noexcept
    : base_(other.base_), size_(other.size_) {
  other.base_ = nullptr;
  other.size_ = 0;
}

ExecMem& ExecMem::operator=(ExecMem&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    size_ = other.size_;
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void ExecMem::release() {
#if LOL_JIT_HAVE_MMAP
  if (base_ != nullptr) munmap(base_, size_);
#endif
  base_ = nullptr;
  size_ = 0;
}

bool ExecMem::supported() {
#if LOL_JIT_HAVE_MMAP
  // Probe once: some hardened kernels (PaX MPROTECT, SELinux deny_execmem)
  // refuse the RW -> RX flip, in which case the engine silently falls back
  // to the cc+dlopen backend.
  static const bool ok = [] {
    long page = sysconf(_SC_PAGESIZE);
    if (page <= 0) return false;
    void* p = mmap(nullptr, static_cast<std::size_t>(page),
                   PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    static_cast<std::uint8_t*>(p)[0] = 0xC3;  // ret
    bool sealed = mprotect(p, static_cast<std::size_t>(page),
                           PROT_READ | PROT_EXEC) == 0;
    munmap(p, static_cast<std::size_t>(page));
    return sealed;
  }();
  return ok;
#else
  return false;
#endif
}

bool ExecMem::map_and_seal(const std::uint8_t* code, std::size_t n,
                           std::string* error) {
#if LOL_JIT_HAVE_MMAP
  release();
  if (n == 0) {
    if (error != nullptr) *error = "JIT: empty code buffer";
    return false;
  }
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  std::size_t sz =
      (n + static_cast<std::size_t>(page) - 1) &
      ~(static_cast<std::size_t>(page) - 1);
  void* p = mmap(nullptr, sz, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    if (error != nullptr) *error = "JIT: mmap failed";
    return false;
  }
  std::memcpy(p, code, n);
  if (mprotect(p, sz, PROT_READ | PROT_EXEC) != 0) {
    munmap(p, sz);
    if (error != nullptr) {
      *error = "JIT: mprotect(PROT_EXEC) refused (W^X policy?)";
    }
    return false;
  }
  base_ = p;
  size_ = sz;
  return true;
#else
  (void)code;
  (void)n;
  if (error != nullptr) *error = "JIT: no mmap on this platform";
  return false;
#endif
}

}  // namespace lol::codegen

// Single-flight build cache: N concurrent misses on the same key run the
// build exactly once; everyone else blocks on the winner's future. Used by
// both compiled-code caches (native cc objects keyed by generated C text,
// JIT programs keyed by chunk bytes) so a burst of identical cold jobs
// costs one compile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace lol::codegen {

template <typename V>
class SingleFlight {
 public:
  explicit SingleFlight(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached (or freshly built) value for `key`. `build` runs
  /// outside the lock in exactly one caller; the rest wait on its future.
  /// `cache_ok(v)` decides whether the finished value is worth keeping —
  /// failed builds are evicted so a later caller can retry.
  template <typename Build, typename CacheOk>
  V get_or_build(const std::string& key, Build&& build, CacheOk&& cache_ok) {
    std::promise<V> p;  // lives here only if this caller becomes the builder
    std::shared_future<V> fut;
    std::uint64_t my_build = 0;
    bool builder = false;
    {
      std::lock_guard<std::mutex> lk(m_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.splice(lru_.end(), lru_, it->second.lru_pos);
        fut = it->second.fut;
      } else {
        Entry e;
        e.build_id = my_build = ++next_build_id_;
        e.fut = fut = p.get_future().share();
        lru_.push_back(key);
        e.lru_pos = std::prev(lru_.end());
        entries_.emplace(key, std::move(e));
        builder = true;
      }
    }
    if (builder) {
      try {
        V v = build();
        bool keep = cache_ok(v);
        p.set_value(std::move(v));
        if (!keep) erase_if_mine(key, my_build);
        trim();
      } catch (...) {
        p.set_exception(std::current_exception());
        erase_if_mine(key, my_build);
        throw;
      }
    }
    return fut.get();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(m_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_future<V> fut;
    std::list<std::string>::iterator lru_pos;
    std::uint64_t build_id = 0;
  };

  /// Only the builder that created the entry may remove it: by the time a
  /// failed build erases its key, a fresh entry for the same key may
  /// already be in flight and must not be dropped.
  void erase_if_mine(const std::string& key, std::uint64_t build_id) {
    std::lock_guard<std::mutex> lk(m_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.build_id == build_id) {
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
  }

  void trim() {
    std::lock_guard<std::mutex> lk(m_);
    while (entries_.size() > capacity_ && lru_.size() > 1) {
      const std::string& victim = lru_.front();
      entries_.erase(victim);
      lru_.pop_front();
    }
  }

  mutable std::mutex m_;
  std::size_t capacity_;
  std::uint64_t next_build_id_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
};

}  // namespace lol::codegen

// Abstract interpretation over VM bytecode for the JIT's specialized tier.
//
// The call-threaded tier (jit_emitter.cpp) already removes dispatch; what
// it still pays on every op is a helper call plus boxed rt::Value stack
// traffic. This pass finds *regions* — maximal contiguous pc ranges whose
// ops it can prove operate on NUMBR/NUMBAR/TROOF payloads — and plans
// machine-register homes for the virtual value stack and the hot scalar
// locals, so the emitter can lower those ops to raw x86-64 with no Value
// boxing and no helper call.
//
// The lattice tracks, per program point inside a candidate region:
//   - the virtual stack: relative depth and a SpecType per entry,
//   - each touched frame local (and IT): payload type, bound-state, and
//     whether the region owns a dirtied copy,
// seeded at region entry by *guards*: runtime checks on the real cells
// (right shape, right payload type, still unbound for in-region declares)
// whose failure deopts to the generic call-threaded translation of the
// same pcs. DeclMeta::hint — populated by the bytecode compiler from
// declaration sites, and sharpened by the opt pipeline's fold/prop turning
// computed initializers into literals — tells the pass what to guard for
// locals that are read before any in-region write.
//
// Ops the lattice cannot prove end the region; every region exit carries a
// materialization plan (push still-live virtual stack entries back onto
// the real VM stack, write dirty locals back to their cells) so the
// generic tier resumes on exactly the state the VM would have had. Step
// accounting is planned as per-basic-block batches whose exactness
// contract lives in jit_emitter.cpp.
//
// Pure analysis, no code emission: tests pin guard placement, region
// extents and spill plans against this API directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/chunk.hpp"

namespace lol::codegen {

/// Payload type of one proven value (the lattice's non-bottom elements;
/// "unknown" is represented by an op simply not being specializable).
enum class SpecType : std::uint8_t { kInt, kDbl, kBool };

/// What a region-entry guard proves about one frame slot. Mirrored by
/// jit_spec_guard() in jit_runtime.cpp; any failure deopts.
enum class SpecGuardKind : std::int32_t {
  kScalarInt = 0,   // bound scalar cell holding a NUMBR; loads the payload
  kScalarDbl = 1,   // bound scalar cell holding a NUMBAR; loads the payload
  kScalarBool = 2,  // bound scalar cell holding a TROOF; loads the payload
  kScalarShape = 3, // bound scalar cell (written before read: shape only)
  kUnbound = 4,     // cell not bound (the region declares it)
  kArrInt = 5,      // bound private SRSLY NUMBR array
  kArrDbl = 6,      // bound private SRSLY NUMBAR array
  kSymArrInt = 7,   // bound symmetric NUMBR array (local indexed access)
  kSymArrDbl = 8,   // bound symmetric NUMBAR array
};

struct SpecGuard {
  std::int32_t slot = -1;
  SpecGuardKind kind = SpecGuardKind::kScalarShape;
  std::int32_t bank = -1;  // bank slot the guard writes the payload into
                           // (kScalar{Int,Dbl,Bool} only; -1 otherwise)
};

/// One tracked local (frame slot, or IT when slot == kItSlot). Every
/// tracked local owns one bank slot; the hottest always-integer locals
/// additionally get a callee-saved GPR home so they survive in-region
/// helper calls (array accesses, step-batch refills) without spills.
struct SpecLocal {
  static constexpr std::int32_t kItSlot = -1;
  std::int32_t slot = kItSlot;
  std::int32_t bank = -1;   // index into the region bank (value backing)
  std::int32_t reg = -1;    // x86 GPR number (r15/rbp) or -1 = bank-homed
  bool int_only = true;     // never holds a NUMBAR inside the region
  std::uint32_t uses = 0;   // static use count (linear-scan priority)
};

/// How one specializable op lowers. One SpecAct per pc in [lo, hi).
struct SpecAct {
  enum class Kind : std::uint8_t {
    kConst,        // push immediate `imm` of type `out`
    kLoadLocal,    // push locals[local] (type `out`)
    kStoreLocal,   // pop into locals[local] (type `in`)
    kDeclare,      // pop init into locals[local]; decl index in `aux`
    kDeclareZero,  // declare locals[local] = zero of `out`; decl in `aux`
    kUnbind,       // mark locals[local] unbound (no code)
    kBin,          // binary `aux` (ast::BinOp) on two `in`; pushes `out`
    kNot,          // pop `in` (int/bool); push bool
    kSquar,        // pop `in` (int/dbl); push in*in
    kCastIntToDbl, // pop int; push dbl (cvtsi2sd)
    kCastNop,      // identity cast: no code
    kPop,          // drop top (no code)
    kMe,           // push PE id (int, from the env)
    kMahFrenz,     // push PE count (int, from the env)
    kArrLoad,      // pop int index; helper-load slot `aux`; push `out`
    kArrStore,     // pop value (`in`), pop int index; helper-store `aux`
    kJmp,          // unconditional jump (internal or exit edge)
    kBranch,       // kJumpIfFalse: pop `in` (int/bool); taken edge in
                   // target / exit list
  };
  Kind kind{};
  SpecType in = SpecType::kInt;   // operand type, where relevant
  SpecType out = SpecType::kInt;  // result type, where relevant
  std::int32_t local = -1;        // index into RegionPlan::locals
  std::int32_t aux = 0;           // op-specific: BinOp, decl idx, arr slot
  std::int64_t imm = 0;           // kConst payload bits
};

/// kBin aux layout: the ast::BinOp in the low byte, plus promotion flags
/// for NUMBR-op-NUMBAR mixes. rt::arith computes in double whenever
/// either operand is a float (and Value::saem compares numerically), so
/// the flagged int operand converts in place before the double op runs —
/// `in` is then the post-promotion operand type, kDbl.
inline constexpr std::int32_t kSpecBinOpMask = 0xFF;
inline constexpr std::int32_t kSpecBinPromoteLhs = 0x100;
inline constexpr std::int32_t kSpecBinPromoteRhs = 0x200;

/// Exit-edge plan: how to hand a live region state back to the generic
/// tier. `vstack` lists the virtual entries to materialize onto the real
/// VM stack (bottom first — the issue's "spill at materialization point");
/// `writebacks` restore every dirtied local/IT/bound-state.
struct SpecWriteback {
  enum class Kind : std::uint8_t { kStore, kDeclare, kUnbind, kIt };
  Kind kind{};
  std::int32_t local = -1;  // kStore/kDeclare/kIt: index into locals
  std::int32_t slot = -1;   // kUnbind: frame slot
  std::int32_t decl = -1;   // kDeclare: chunk decl index
  SpecType type = SpecType::kInt;
};

struct SpecExit {
  std::size_t at_pc = 0;   // op owning the edge; == hi for the fallthrough
  std::size_t target = 0;  // generic pc to resume at
  std::vector<SpecType> vstack;
  std::vector<SpecWriteback> writebacks;
};

/// One step-accounting batch: a basic block of `steps` specialized ops
/// charged with a single budget check at `first_pc` (see jit_emitter.cpp
/// for the exactness argument).
struct SpecSegment {
  std::size_t first_pc = 0;
  std::int32_t steps = 0;
};

struct RegionPlan {
  std::size_t lo = 0, hi = 0;  // [lo, hi) bytecode pcs
  std::vector<SpecGuard> guards;
  std::vector<SpecLocal> locals;
  std::vector<SpecAct> acts;        // acts[pc - lo]
  /// Virtual stack types *before* each act. The emitter cannot replay
  /// them from the acts alone: at a pc reached only by a forward edge
  /// (linear predecessor was an unconditional jump) the state is the
  /// edge's, not the dead straight line's.
  std::vector<std::vector<SpecType>> vstack_at;  // vstack_at[pc - lo]
  std::vector<SpecExit> exits;      // ascending at_pc; ties in plan order
  std::vector<SpecSegment> segments;
  std::int32_t bank_slots = 0;      // bank quads this region needs
  std::uint32_t max_depth = 0;      // deepest virtual stack point

  [[nodiscard]] const SpecExit* exit_at(std::size_t pc) const {
    for (const SpecExit& e : exits) {
      if (e.at_pc == pc) return &e;
    }
    return nullptr;
  }
};

struct SpecPlan {
  std::vector<RegionPlan> regions;  // ascending lo, non-overlapping
  std::int32_t bank_slots = 0;      // max region requirement (incl. the
                                    // shared vstack spill area)

  [[nodiscard]] const RegionPlan* region_starting_at(std::size_t pc) const {
    for (const RegionPlan& r : regions) {
      if (r.lo == pc) return &r;
    }
    return nullptr;
  }
};

/// Virtual-stack register plan shared between analysis and emitter:
/// entries at relative depth 0..3 live in {r8,r9,r10,r11} (ints/bools)
/// or {xmm0..xmm3} (doubles); deeper entries live in the bank's vstack
/// area, bank slot == depth. Depth is capped at kMaxVstack.
inline constexpr std::uint32_t kVstackRegDepth = 4;
inline constexpr std::uint32_t kMaxVstack = 8;

/// Plans specialized regions for `chunk`. Pure; never fails — a chunk
/// with nothing provable just yields zero regions.
SpecPlan analyze_chunk(const vm::Chunk& chunk);

/// Human-readable plan summary (lolrun --jit-dump, tests).
std::string describe_plan(const vm::Chunk& chunk, const SpecPlan& plan);

}  // namespace lol::codegen

/* lolrt_c.h — the C runtime API for lcc-generated code.
 *
 * This plays the role OpenSHMEM + libc play in the paper's toolchain: the
 * LOLCODE compiler translates source to C that calls only this interface,
 * and any C99 compiler produces the final executable. The implementation
 * (lolrt_c.cpp) is backed by the same shmem substrate, value model and IO
 * plumbing the interpreter and VM use, so all three backends share one
 * semantics.
 *
 * Error model: runtime errors (bad casts, out-of-range PEs, lock misuse)
 * do not return; they record a message and longjmp back to the launcher,
 * which aborts the SPMD job like a failing PE would.
 *
 * SPMD model: `lolrt_run_main` launches N PEs (threads) over one process;
 * the generated program keeps all its state in a per-PE struct handed
 * around via lolrt_set_user/lolrt_user, so PEs never share C globals.
 */
#ifndef LOLRT_C_H
#define LOLRT_C_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct lolrt_pe lolrt_pe;

/* A dynamically typed LOLCODE value. YARN payloads live in a per-PE
 * arena owned by the runtime; user code never frees them. */
typedef struct lolv {
  int t; /* LOLV_* type tag */
  long long i;
  double f;
  const char* s;
} lolv;

enum {
  LOLV_NOOB = 0,
  LOLV_TROOF = 1,
  LOLV_NUMBR = 2,
  LOLV_NUMBAR = 3,
  LOLV_YARN = 4
};

/* Operator codes: values match lol::ast::BinOp / UnOp / NaryOp order. */
enum {
  LOLRT_BIN_SUM = 0,
  LOLRT_BIN_DIFF = 1,
  LOLRT_BIN_PRODUKT = 2,
  LOLRT_BIN_QUOSHUNT = 3,
  LOLRT_BIN_MOD = 4,
  LOLRT_BIN_BIGGR = 5,
  LOLRT_BIN_SMALLR = 6,
  LOLRT_BIN_SAEM = 7,
  LOLRT_BIN_DIFFRINT = 8,
  LOLRT_BIN_BIGGER = 9,
  LOLRT_BIN_SMALLR_CMP = 10,
  LOLRT_BIN_BOTH = 11,
  LOLRT_BIN_EITHER = 12,
  LOLRT_BIN_WON = 13
};
enum {
  LOLRT_UN_NOT = 0,
  LOLRT_UN_SQUAR = 1,
  LOLRT_UN_UNSQUAR = 2,
  LOLRT_UN_FLIP = 3
};
enum { LOLRT_NARY_ALL = 0, LOLRT_NARY_ANY = 1, LOLRT_NARY_SMOOSH = 2 };

/* -- value constructors ---------------------------------------------------- */
lolv lolrt_noob(void);
lolv lolrt_troof(long long b);
lolv lolrt_numbr(long long v);
lolv lolrt_numbar(double v);
lolv lolrt_yarn(lolrt_pe* pe, const char* s);

/* -- operators and casts ----------------------------------------------------- */
lolv lolrt_binary(lolrt_pe* pe, int op, lolv a, lolv b);
lolv lolrt_unary(lolrt_pe* pe, int op, lolv a);
lolv lolrt_nary(lolrt_pe* pe, int op, int n, const lolv* xs);
lolv lolrt_cast(lolrt_pe* pe, lolv v, int type, int is_explicit);
long long lolrt_truthy(lolv v);
long long lolrt_to_i64(lolrt_pe* pe, lolv v);
double lolrt_to_f64(lolrt_pe* pe, lolv v);
const char* lolrt_to_str(lolrt_pe* pe, lolv v);
long long lolrt_saem(lolv a, lolv b);

/* -- checked native math (fast paths for SRSLY-typed code) ------------------- */
long long lolrt_idiv(lolrt_pe* pe, long long a, long long b);
long long lolrt_imod(lolrt_pe* pe, long long a, long long b);
double lolrt_fdiv(lolrt_pe* pe, double a, double b);
double lolrt_fmod2(lolrt_pe* pe, double a, double b);
double lolrt_sqrt2(lolrt_pe* pe, double x);  /* errors on negative */
double lolrt_flip2(lolrt_pe* pe, double x);  /* errors on zero */

/* -- IO ----------------------------------------------------------------------- */
void lolrt_visible(lolrt_pe* pe, int n, const lolv* xs, int newline,
                   int to_stderr);
lolv lolrt_gimmeh(lolrt_pe* pe);

/* -- cooperative step budget / abort poll -------------------------------------- */
/* Charges one execution step. The generated code calls this once per
 * statement and once per loop iteration, mirroring how the interpreter
 * charges rt::ExecContext::count_step — so `--max-steps` budgets and
 * external aborts (Service deadlines, cancel) behave identically on the
 * native path. Does not return when the budget is exhausted or an abort
 * is pending: the condition is recorded and control longjmps back to the
 * launcher, which reports a step-limit or abort failure for this PE. */
void lolrt_step(lolrt_pe* pe);

/* -- SPMD / PGAS (the paper's Table II surface) ------------------------------- */
long long lolrt_me(lolrt_pe* pe);      /* ME */
long long lolrt_n_pes(lolrt_pe* pe);   /* MAH FRENZ */
void lolrt_hugz(lolrt_pe* pe);         /* HUGZ barrier */
long long lolrt_whatevr(lolrt_pe* pe); /* WHATEVR */
double lolrt_whatevar(lolrt_pe* pe);   /* WHATEVAR */

void lolrt_lock(lolrt_pe* pe, int lock_id);     /* IM SRSLY MESIN WIF */
long long lolrt_trylock(lolrt_pe* pe, int lock_id); /* IM MESIN WIF */
void lolrt_unlock(lolrt_pe* pe, int lock_id);   /* DUN MESIN WIF */

/* Symmetric allocation: collective; `slots` 8-byte elements. */
size_t lolrt_shmalloc(lolrt_pe* pe, long long slots);

/* Element access. `remote` != 0 targets the current TXT MAH BFF PE.
 * `elem` is a LOLV_* tag (NUMBR, NUMBAR or TROOF). */
lolv lolrt_sym_load(lolrt_pe* pe, size_t off, long long count, int elem,
                    long long idx, int remote);
void lolrt_sym_store(lolrt_pe* pe, size_t off, long long count, int elem,
                     long long idx, int remote, lolv v);
double lolrt_sym_load_f64(lolrt_pe* pe, size_t off, long long count,
                          long long idx, int remote);
void lolrt_sym_store_f64(lolrt_pe* pe, size_t off, long long count,
                         long long idx, int remote, double v);
long long lolrt_sym_load_i64(lolrt_pe* pe, size_t off, long long count,
                             long long idx, int remote);
void lolrt_sym_store_i64(lolrt_pe* pe, size_t off, long long count,
                         long long idx, int remote, long long v);

/* Whole-array symmetric copy (paper §VI.A ring example). */
void lolrt_sym_copy(lolrt_pe* pe, size_t dst_off, int dst_remote,
                    size_t src_off, int src_remote, long long slots);

/* Thread predication (TXT MAH BFF ... / TTYL). */
void lolrt_bff_push(lolrt_pe* pe, long long target);
void lolrt_bff_pop(lolrt_pe* pe, int n);
long long lolrt_bff_depth(lolrt_pe* pe);
void lolrt_bff_reset(lolrt_pe* pe, long long depth);

/* -- memory, user state, errors ---------------------------------------------- */
void* lolrt_alloc(lolrt_pe* pe, size_t bytes); /* zeroed; freed at PE end */
long long lolrt_idx(lolrt_pe* pe, long long idx, long long n);
void lolrt_arr_fill(lolrt_pe* pe, lolv* arr, long long n, int elem);
void lolrt_set_user(lolrt_pe* pe, void* p);
void* lolrt_user(lolrt_pe* pe);
void lolrt_fail(lolrt_pe* pe, const char* msg);

/* -- launcher ------------------------------------------------------------------ */
typedef void (*lolrt_main_fn)(lolrt_pe* pe);

/* Parses `-np N` (default 1), `--seed S`, `--heap BYTES`, `--max-steps S`
 * (per-PE step budget, 0 = unlimited), `--tag` from argv, launches `fn`
 * SPMD, streams VISIBLE output to stdout/stderr and reads GIMMEH from the
 * real stdin. Exit status is classified so callers can tell failure modes
 * apart, mirroring JobStatus in the service layer:
 *   0  every PE ran to completion
 *   1  a PE raised a runtime error
 *   2  bad usage
 *   3  a PE exhausted its `--max-steps` budget (step-limited)          */
int lolrt_run_main(int argc, char** argv, lolrt_main_fn fn, int n_locks);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* LOLRT_C_H */

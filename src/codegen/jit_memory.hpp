// W^X executable-memory allocation for the JIT backend: code is written
// into fresh PROT_READ|PROT_WRITE pages, then sealed to PROT_READ|PROT_EXEC
// before anything may jump into it. Pages are never writable and
// executable at the same time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lol::codegen {

class ExecMem {
 public:
  ExecMem() = default;
  ~ExecMem();
  ExecMem(ExecMem&& other) noexcept;
  ExecMem& operator=(ExecMem&& other) noexcept;
  ExecMem(const ExecMem&) = delete;
  ExecMem& operator=(const ExecMem&) = delete;

  /// True when this platform can mmap anonymous pages and flip them to
  /// PROT_EXEC (probed once; e.g. fails under a hardened W^X-only kernel).
  static bool supported();

  /// Copies `n` bytes of machine code into fresh pages and seals them
  /// executable. Returns false (with `error` set) on failure.
  bool map_and_seal(const std::uint8_t* code, std::size_t n,
                    std::string* error);

  [[nodiscard]] const void* base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void release();

  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lol::codegen

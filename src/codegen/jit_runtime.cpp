// Per-opcode helpers the emitted machine code calls. Each helper charges
// the step (exactly like the VM's dispatch loop does per instruction),
// runs the shared Vm::op_* body, and converts any C++ exception into a
// negative status with the exception parked in a thread-local — emitted
// code has no unwind tables, so exceptions must not propagate through it.
// jit_backend.cpp rethrows after the epilogue returns.
#include "codegen/jit_emitter.hpp"
#include "vm/vm.hpp"

namespace lol::codegen {

namespace detail {

std::exception_ptr& jit_pending() {
  thread_local std::exception_ptr pending;
  return pending;
}

}  // namespace detail

namespace {

using vm::Op;
using vm::Vm;

/// Runs `body` under the step charge; parks exceptions. `body` returns
/// the op's non-negative status (almost always 0).
template <typename Body>
std::int32_t guarded(Vm* vm, Body&& body) {
  try {
    vm->ctx().count_step();
    return body();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t h_const(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_const(a); return 0; });
}
std::int32_t h_pop(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_pop(); return 0; });
}
std::int32_t h_load_it(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_load_it(); return 0; });
}
std::int32_t h_store_it(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_store_it(); return 0; });
}
std::int32_t h_declare(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_declare(a); return 0; });
}
std::int32_t h_unbind(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_unbind(a); return 0; });
}
std::int32_t h_load_var(Vm* vm, std::int32_t a, std::int32_t b,
                        std::int32_t) {
  return guarded(vm, [&] { vm->op_load_var(a, b); return 0; });
}
std::int32_t h_store_var(Vm* vm, std::int32_t a, std::int32_t b,
                         std::int32_t) {
  return guarded(vm, [&] { vm->op_store_var(a, b); return 0; });
}
std::int32_t h_copy_array(Vm* vm, std::int32_t a, std::int32_t b,
                          std::int32_t c) {
  return guarded(vm, [&] { vm->op_copy_array(a, b, c); return 0; });
}
std::int32_t h_lock(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t c) {
  return guarded(vm, [&] { vm->op_lock(a, b, c); return 0; });
}
std::int32_t h_binary(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_binary(a); return 0; });
}
std::int32_t h_unary(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_unary(a); return 0; });
}
std::int32_t h_nary(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  return guarded(vm, [&] { vm->op_nary(a, b); return 0; });
}
std::int32_t h_cast(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  return guarded(vm, [&] { vm->op_cast(a, b); return 0; });
}
std::int32_t h_step_only(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  // kJump / kHalt: control flow is in the emitted code; only the step
  // charge remains.
  return guarded(vm, [&] { return 0; });
}
std::int32_t h_jump_if_false(Vm* vm, std::int32_t, std::int32_t,
                             std::int32_t) {
  return guarded(vm, [&] { return vm->op_jump_if_false() ? 1 : 0; });
}
std::int32_t h_call(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  // The machine `call` that follows targets the function's stub; the
  // entry pc op_call returns (and the ret_pc it records) are only used
  // by the interpreting VM.
  return guarded(vm, [&] { (void)vm->op_call(a, b, 0); return 0; });
}
std::int32_t h_return(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { (void)vm->op_return(); return 0; });
}
std::int32_t h_me(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_me(); return 0; });
}
std::int32_t h_mah_frenz(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_mah_frenz(); return 0; });
}
std::int32_t h_whatevr(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_whatevr(); return 0; });
}
std::int32_t h_whatevar(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_whatevar(); return 0; });
}
std::int32_t h_hugz(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_hugz(); return 0; });
}
std::int32_t h_bff_push(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_bff_push(); return 0; });
}
std::int32_t h_bff_pop(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_bff_pop(a); return 0; });
}
std::int32_t h_visible(Vm* vm, std::int32_t a, std::int32_t b,
                       std::int32_t) {
  return guarded(vm, [&] { vm->op_visible(a, b); return 0; });
}
std::int32_t h_gimmeh(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_gimmeh(); return 0; });
}

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kHalt) + 1;

const JitHelperFn kTable[kOpCount] = {
    /* kConst       */ h_const,
    /* kPop         */ h_pop,
    /* kLoadIt      */ h_load_it,
    /* kStoreIt     */ h_store_it,
    /* kDeclare     */ h_declare,
    /* kLoadVar     */ h_load_var,
    /* kStoreVar    */ h_store_var,
    /* kCopyArray   */ h_copy_array,
    /* kLock        */ h_lock,
    /* kBinary      */ h_binary,
    /* kUnary       */ h_unary,
    /* kNary        */ h_nary,
    /* kCast        */ h_cast,
    /* kJump        */ h_step_only,
    /* kJumpIfFalse */ h_jump_if_false,
    /* kCall        */ h_call,
    /* kReturn      */ h_return,
    /* kMe          */ h_me,
    /* kMahFrenz    */ h_mah_frenz,
    /* kWhatevr     */ h_whatevr,
    /* kWhatevar    */ h_whatevar,
    /* kHugz        */ h_hugz,
    /* kBffPush     */ h_bff_push,
    /* kBffPop      */ h_bff_pop,
    /* kVisible     */ h_visible,
    /* kGimmeh      */ h_gimmeh,
    /* kUnbind      */ h_unbind,
    /* kHalt        */ h_step_only,
};

// Typed kBinary fast-path preps. Same exception discipline as the
// helpers (park + sentinel), but the return is a two-field struct so the
// emitted code receives the operand view directly in registers: BinFastI
// in rax:rdx, BinFastD in rax + xmm0 (SysV). lhs == 0 signals a type
// mismatch (no step charged — fall back to the generic helper); lhs ==
// -1 signals a parked exception (bail to the epilogue).
vm::BinFastI jf_binfast_numbr(Vm* vm) {
  try {
    return vm->binfast_prep_numbr();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {reinterpret_cast<std::int64_t*>(-1), 0};
  }
}

vm::BinFastD jf_binfast_numbar(Vm* vm) {
  try {
    return vm->binfast_prep_numbar();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {reinterpret_cast<double*>(-1), 0.0};
  }
}

}  // namespace

const JitHelperFn* jit_helper_table() { return kTable; }

std::uint64_t jit_binfast_numbr_addr() {
  return reinterpret_cast<std::uint64_t>(&jf_binfast_numbr);
}

std::uint64_t jit_binfast_numbar_addr() {
  return reinterpret_cast<std::uint64_t>(&jf_binfast_numbar);
}

}  // namespace lol::codegen

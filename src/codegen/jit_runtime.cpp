// Per-opcode helpers the emitted machine code calls. Each helper charges
// the step (exactly like the VM's dispatch loop does per instruction),
// runs the shared Vm::op_* body, and converts any C++ exception into a
// negative status with the exception parked in a thread-local — emitted
// code has no unwind tables, so exceptions must not propagate through it.
// jit_backend.cpp rethrows after the epilogue returns.
//
// The second half of this file is the specialized tier's runtime surface
// (JitSpecAccess): region-entry type guards, batched step accounting,
// SRSLY-array element access, and the exit-path materialization that
// rebuilds VM state from register/bank values. Every error these raise
// uses the exact strings the Vm methods use, so a program that dies
// inside a specialized region dies with a byte-identical message.
#include <algorithm>

#include "codegen/jit_analysis.hpp"
#include "codegen/jit_emitter.hpp"
#include "vm/vm.hpp"

namespace lol::vm {

/// Friend-of-Vm accessor for the specialized tier (declared in vm.hpp).
/// Bodies may throw exactly where the equivalent Vm op would; the
/// extern wrappers below park and report status like every JIT helper.
struct JitSpecAccess {
  using GK = codegen::SpecGuardKind;
  using ST = codegen::SpecType;

  static rt::Value value_of(std::int64_t bits, ST type) {
    switch (type) {
      case ST::kInt: return rt::Value::numbr(bits);
      case ST::kDbl: {
        double d;
        __builtin_memcpy(&d, &bits, sizeof d);
        return rt::Value::numbar(d);
      }
      case ST::kBool: return rt::Value::troof(bits != 0);
    }
    return rt::Value::noob();
  }

  /// Region-entry guard: proves the cell has the shape/payload the
  /// analysis assumed, loading scalar payloads into the bank. Read-only —
  /// a failed guard leaves the VM untouched for the generic path.
  static std::int32_t guard(Vm& vm, std::int32_t slot, std::int32_t kind,
                            std::int64_t* bank_out) {
    Vm::Cell& c =
        vm.frames_.back().slots[static_cast<std::size_t>(slot)];
    switch (static_cast<GK>(kind)) {
      case GK::kScalarInt:
        if (!c.bound || c.arr != nullptr || c.sym || !c.v.is_numbr()) {
          return 0;
        }
        *bank_out = c.v.numbr_raw();
        return 1;
      case GK::kScalarDbl: {
        if (!c.bound || c.arr != nullptr || c.sym || !c.v.is_numbar()) {
          return 0;
        }
        double d = c.v.numbar_raw();
        __builtin_memcpy(bank_out, &d, sizeof d);
        return 1;
      }
      case GK::kScalarBool:
        if (!c.bound || c.arr != nullptr || c.sym || !c.v.is_troof()) {
          return 0;
        }
        *bank_out = c.v.troof_raw() ? 1 : 0;
        return 1;
      case GK::kScalarShape:
        return c.bound && c.arr == nullptr && !c.sym ? 1 : 0;
      case GK::kUnbound:
        return c.bound ? 0 : 1;
      case GK::kArrInt:
        return c.bound && c.arr != nullptr && !c.sym && c.arr->srsly &&
                       c.arr->elem == ast::TypeKind::kNumbr
                   ? 1
                   : 0;
      case GK::kArrDbl:
        return c.bound && c.arr != nullptr && !c.sym && c.arr->srsly &&
                       c.arr->elem == ast::TypeKind::kNumbar
                   ? 1
                   : 0;
      case GK::kSymArrInt:
        return c.bound && c.sym && c.sym->is_array &&
                       c.sym->elem == ast::TypeKind::kNumbr
                   ? 1
                   : 0;
      case GK::kSymArrDbl:
        return c.bound && c.sym && c.sym->is_array &&
                       c.sym->elem == ast::TypeKind::kNumbar
                   ? 1
                   : 0;
    }
    return 0;
  }

  /// Bounds-checked array element read. The guard proved shape and
  /// element type; only the index can fail, with the Vm's exact message.
  /// The symmetric branch goes through rt::sym_read like Vm::load_cell,
  /// so its schedule_yield choice point and sim-time charge survive.
  static rt::Value arr_load(Vm& vm, std::int32_t slot, std::int64_t idx) {
    Vm::Cell& c = vm.frames_.back().slots[static_cast<std::size_t>(slot)];
    if (c.sym) {
      if (idx < 0 || static_cast<std::size_t>(idx) >= c.sym->count) {
        throw support::RuntimeError("array index " + std::to_string(idx) +
                                    " out of bounds [0, " +
                                    std::to_string(c.sym->count) + ")");
      }
      return rt::sym_read(*vm.ctx_.pe, *c.sym,
                          static_cast<std::size_t>(idx), -1);
    }
    rt::PrivateArray& arr = *c.arr;
    if (idx < 0 || static_cast<std::size_t>(idx) >= arr.elems.size()) {
      throw support::RuntimeError("array index " + std::to_string(idx) +
                                  " out of bounds [0, " +
                                  std::to_string(arr.elems.size()) + ")");
    }
    return arr.elems[static_cast<std::size_t>(idx)];
  }

  static void arr_store(Vm& vm, std::int32_t slot, std::int64_t idx,
                        rt::Value v) {
    Vm::Cell& c = vm.frames_.back().slots[static_cast<std::size_t>(slot)];
    if (c.sym) {
      if (idx < 0 || static_cast<std::size_t>(idx) >= c.sym->count) {
        throw support::RuntimeError("array index " + std::to_string(idx) +
                                    " out of bounds [0, " +
                                    std::to_string(c.sym->count) + ")");
      }
      // sym_write's to_numbr/to_numbar cast is the identity: the guard
      // proved the lane type matches the value the region computed.
      rt::sym_write(*vm.ctx_.pe, *c.sym, static_cast<std::size_t>(idx), -1,
                    v);
      return;
    }
    rt::PrivateArray& arr = *c.arr;
    if (idx < 0 || static_cast<std::size_t>(idx) >= arr.elems.size()) {
      throw support::RuntimeError("array index " + std::to_string(idx) +
                                  " out of bounds [0, " +
                                  std::to_string(arr.elems.size()) + ")");
    }
    // The guard proved srsly + matching element type: the cast the Vm
    // would apply is the identity.
    arr.elems[static_cast<std::size_t>(idx)] = std::move(v);
  }

  static void push(Vm& vm, std::int64_t bits, ST type) {
    vm.push(value_of(bits, type));
  }

  /// Exit writeback of a scalar store. Replicates Vm::store_cell's bound
  /// scalar tail; the stype cast is the identity (the analysis only
  /// specializes stores whose type matches any SRSLY declared type).
  static void wb_store(Vm& vm, std::int32_t slot, std::int64_t bits,
                       ST type) {
    Vm::Cell& c =
        vm.frames_.back().slots[static_cast<std::size_t>(slot)];
    rt::Value v = value_of(bits, type);
    if (c.stype) v = v.cast_to(*c.stype, false);
    c.v = std::move(v);
  }

  /// Exit writeback of an in-region declaration. The cell was proven
  /// unbound at region entry, so starting from a default Cell is exactly
  /// the state op_declare would have seen.
  static void wb_decl(Vm& vm, std::int32_t decl, std::int64_t bits,
                      ST type) {
    const DeclMeta& m =
        JitSpecAccess::chunk(vm).decls[static_cast<std::size_t>(decl)];
    Vm::Cell& c =
        vm.frames_.back().slots[static_cast<std::size_t>(m.slot)];
    c = Vm::Cell{};
    if (m.srsly && m.static_type) c.stype = *m.static_type;
    rt::Value v = value_of(bits, type);
    if (c.stype) v = v.cast_to(*c.stype, false);
    c.v = std::move(v);
    c.bound = true;
  }

  static void wb_unbind(Vm& vm, std::int32_t slot) {
    vm.frames_.back().slots[static_cast<std::size_t>(slot)] = Vm::Cell{};
  }

  static void wb_it(Vm& vm, std::int64_t bits, ST type) {
    vm.frames_.back().it = value_of(bits, type);
  }

  static const Chunk& chunk(const Vm& vm) { return vm.chunk_; }
};

}  // namespace lol::vm

namespace lol::codegen {

namespace detail {

std::exception_ptr& jit_pending() {
  thread_local std::exception_ptr pending;
  return pending;
}

}  // namespace detail

namespace {

using vm::Op;
using vm::Vm;

/// Runs `body` under the step charge; parks exceptions. `body` returns
/// the op's non-negative status (almost always 0).
template <typename Body>
std::int32_t guarded(Vm* vm, Body&& body) {
  try {
    vm->ctx().count_step();
    return body();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t h_const(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_const(a); return 0; });
}
std::int32_t h_pop(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_pop(); return 0; });
}
std::int32_t h_load_it(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_load_it(); return 0; });
}
std::int32_t h_store_it(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_store_it(); return 0; });
}
std::int32_t h_declare(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_declare(a); return 0; });
}
std::int32_t h_unbind(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_unbind(a); return 0; });
}
std::int32_t h_load_var(Vm* vm, std::int32_t a, std::int32_t b,
                        std::int32_t) {
  return guarded(vm, [&] { vm->op_load_var(a, b); return 0; });
}
std::int32_t h_store_var(Vm* vm, std::int32_t a, std::int32_t b,
                         std::int32_t) {
  return guarded(vm, [&] { vm->op_store_var(a, b); return 0; });
}
std::int32_t h_copy_array(Vm* vm, std::int32_t a, std::int32_t b,
                          std::int32_t c) {
  return guarded(vm, [&] { vm->op_copy_array(a, b, c); return 0; });
}
std::int32_t h_lock(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t c) {
  return guarded(vm, [&] { vm->op_lock(a, b, c); return 0; });
}
std::int32_t h_binary(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_binary(a); return 0; });
}
std::int32_t h_unary(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_unary(a); return 0; });
}
std::int32_t h_nary(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  return guarded(vm, [&] { vm->op_nary(a, b); return 0; });
}
std::int32_t h_cast(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  return guarded(vm, [&] { vm->op_cast(a, b); return 0; });
}
std::int32_t h_step_only(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  // kJump / kHalt: control flow is in the emitted code; only the step
  // charge remains.
  return guarded(vm, [&] { return 0; });
}
std::int32_t h_jump_if_false(Vm* vm, std::int32_t, std::int32_t,
                             std::int32_t) {
  return guarded(vm, [&] { return vm->op_jump_if_false() ? 1 : 0; });
}
std::int32_t h_call(Vm* vm, std::int32_t a, std::int32_t b, std::int32_t) {
  // The machine `call` that follows targets the function's stub; the
  // entry pc op_call returns (and the ret_pc it records) are only used
  // by the interpreting VM.
  return guarded(vm, [&] { (void)vm->op_call(a, b, 0); return 0; });
}
std::int32_t h_return(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { (void)vm->op_return(); return 0; });
}
std::int32_t h_me(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_me(); return 0; });
}
std::int32_t h_mah_frenz(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_mah_frenz(); return 0; });
}
std::int32_t h_whatevr(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_whatevr(); return 0; });
}
std::int32_t h_whatevar(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_whatevar(); return 0; });
}
std::int32_t h_hugz(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_hugz(); return 0; });
}
std::int32_t h_bff_push(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_bff_push(); return 0; });
}
std::int32_t h_bff_pop(Vm* vm, std::int32_t a, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_bff_pop(a); return 0; });
}
std::int32_t h_visible(Vm* vm, std::int32_t a, std::int32_t b,
                       std::int32_t) {
  return guarded(vm, [&] { vm->op_visible(a, b); return 0; });
}
std::int32_t h_gimmeh(Vm* vm, std::int32_t, std::int32_t, std::int32_t) {
  return guarded(vm, [&] { vm->op_gimmeh(); return 0; });
}

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kHalt) + 1;

const JitHelperFn kTable[kOpCount] = {
    /* kConst       */ h_const,
    /* kPop         */ h_pop,
    /* kLoadIt      */ h_load_it,
    /* kStoreIt     */ h_store_it,
    /* kDeclare     */ h_declare,
    /* kLoadVar     */ h_load_var,
    /* kStoreVar    */ h_store_var,
    /* kCopyArray   */ h_copy_array,
    /* kLock        */ h_lock,
    /* kBinary      */ h_binary,
    /* kUnary       */ h_unary,
    /* kNary        */ h_nary,
    /* kCast        */ h_cast,
    /* kJump        */ h_step_only,
    /* kJumpIfFalse */ h_jump_if_false,
    /* kCall        */ h_call,
    /* kReturn      */ h_return,
    /* kMe          */ h_me,
    /* kMahFrenz    */ h_mah_frenz,
    /* kWhatevr     */ h_whatevr,
    /* kWhatevar    */ h_whatevar,
    /* kHugz        */ h_hugz,
    /* kBffPush     */ h_bff_push,
    /* kBffPop      */ h_bff_pop,
    /* kVisible     */ h_visible,
    /* kGimmeh      */ h_gimmeh,
    /* kUnbind      */ h_unbind,
    /* kHalt        */ h_step_only,
};

// Typed kBinary fast-path preps. Same exception discipline as the
// helpers (park + sentinel), but the return is a two-field struct so the
// emitted code receives the operand view directly in registers: BinFastI
// in rax:rdx, BinFastD in rax + xmm0 (SysV). lhs == 0 signals a type
// mismatch (no step charged — fall back to the generic helper); lhs ==
// -1 signals a parked exception (bail to the epilogue).
vm::BinFastI jf_binfast_numbr(Vm* vm) {
  try {
    return vm->binfast_prep_numbr();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {reinterpret_cast<std::int64_t*>(-1), 0};
  }
}

vm::BinFastD jf_binfast_numbar(Vm* vm) {
  try {
    return vm->binfast_prep_numbar();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {reinterpret_cast<double*>(-1), 0.0};
  }
}

// ---- specialized-tier runtime ------------------------------------------

using vm::JitSpecAccess;

/// Batched step accounting. A specialized basic block of k ops charges
/// them inline (fuel permitting); when fuel runs out, this charges the
/// k steps through ctx.count_step() one by one — so a step-limit throw,
/// PE kill or abort fires at the exact step index the VM would have used,
/// with the abort poll / fiber preempt at its exact period — then returns
/// fresh fuel: the number of steps that can safely be charged inline
/// before any of those events could fire.
std::int64_t js_slow(Vm* vm, JitSpecEnv* env, std::int64_t k) {
  (void)vm;
  rt::ExecContext& ctx = *env->ctx;
  try {
    for (std::int64_t i = 0; i < k; ++i) ctx.count_step();
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
  env->spec_ops += static_cast<std::uint64_t>(k);
  std::uint64_t fuel = rt::ExecContext::kAbortPollPeriod;
  fuel = std::min(fuel, ctx.abort_countdown - 1);  // countdown >= 1 here
  if (ctx.max_steps != 0) fuel = std::min(fuel, ctx.steps_left);
  if (ctx.kill_at_step != 0) {
    fuel = std::min(fuel, ctx.kill_at_step - 1 - ctx.steps_done);
  }
  return static_cast<std::int64_t>(fuel);
}

std::int32_t js_guard(Vm* vm, std::int32_t slot, std::int32_t kind,
                      std::int64_t* bank_out) {
  return JitSpecAccess::guard(*vm, slot, kind, bank_out);
}

struct SpecRetI {
  std::int64_t status;  // rax
  std::int64_t value;   // rdx
};
struct SpecRetD {
  std::int64_t status;  // rax
  double value;         // xmm0
};

SpecRetI js_arr_load_i(Vm* vm, std::int32_t slot, std::int64_t idx) {
  try {
    return {0, JitSpecAccess::arr_load(*vm, slot, idx).numbr_raw()};
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {-1, 0};
  }
}

SpecRetD js_arr_load_d(Vm* vm, std::int32_t slot, std::int64_t idx) {
  try {
    return {0, JitSpecAccess::arr_load(*vm, slot, idx).numbar_raw()};
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return {-1, 0.0};
  }
}

std::int32_t js_arr_store_i(Vm* vm, std::int32_t slot, std::int64_t idx,
                            std::int64_t v) {
  try {
    JitSpecAccess::arr_store(*vm, slot, idx, rt::Value::numbr(v));
    return 0;
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t js_arr_store_d(Vm* vm, std::int32_t slot, std::int64_t idx,
                            double v) {
  try {
    JitSpecAccess::arr_store(*vm, slot, idx, rt::Value::numbar(v));
    return 0;
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t js_push(Vm* vm, std::int64_t bits, std::int32_t type) {
  try {
    JitSpecAccess::push(*vm, bits, static_cast<SpecType>(type));
    return 0;
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t js_wb_store(Vm* vm, std::int32_t slot, std::int64_t bits,
                         std::int32_t type) {
  try {
    JitSpecAccess::wb_store(*vm, slot, bits, static_cast<SpecType>(type));
    return 0;
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t js_wb_decl(Vm* vm, std::int32_t decl, std::int64_t bits,
                        std::int32_t type) {
  try {
    JitSpecAccess::wb_decl(*vm, decl, bits, static_cast<SpecType>(type));
    return 0;
  } catch (...) {
    detail::jit_pending() = std::current_exception();
    return -1;
  }
}

std::int32_t js_wb_unbind(Vm* vm, std::int32_t slot) {
  JitSpecAccess::wb_unbind(*vm, slot);
  return 0;
}

std::int32_t js_wb_it(Vm* vm, std::int64_t bits, std::int32_t type) {
  JitSpecAccess::wb_it(*vm, bits, static_cast<SpecType>(type));
  return 0;
}

}  // namespace

const JitHelperFn* jit_helper_table() { return kTable; }

std::uint64_t jit_binfast_numbr_addr() {
  return reinterpret_cast<std::uint64_t>(&jf_binfast_numbr);
}

std::uint64_t jit_binfast_numbar_addr() {
  return reinterpret_cast<std::uint64_t>(&jf_binfast_numbar);
}

const JitSpecHelpers& jit_spec_helpers() {
  static const JitSpecHelpers h = [] {
    JitSpecHelpers t;
    t.slow = reinterpret_cast<std::uint64_t>(&js_slow);
    t.guard = reinterpret_cast<std::uint64_t>(&js_guard);
    t.arr_load_i = reinterpret_cast<std::uint64_t>(&js_arr_load_i);
    t.arr_load_d = reinterpret_cast<std::uint64_t>(&js_arr_load_d);
    t.arr_store_i = reinterpret_cast<std::uint64_t>(&js_arr_store_i);
    t.arr_store_d = reinterpret_cast<std::uint64_t>(&js_arr_store_d);
    t.push = reinterpret_cast<std::uint64_t>(&js_push);
    t.wb_store = reinterpret_cast<std::uint64_t>(&js_wb_store);
    t.wb_decl = reinterpret_cast<std::uint64_t>(&js_wb_decl);
    t.wb_unbind = reinterpret_cast<std::uint64_t>(&js_wb_unbind);
    t.wb_it = reinterpret_cast<std::uint64_t>(&js_wb_it);
    return t;
  }();
  return h;
}

}  // namespace lol::codegen

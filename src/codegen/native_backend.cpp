#include "codegen/native_backend.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>
#define LOL_HAVE_DLOPEN 1
#endif

#include "codegen/c_emitter.hpp"
#include "codegen/single_flight.hpp"
#include "driver/cli.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

// Baked in by CMake: where lolrt_c.h lives (the generated C includes it)
// and any flags the lol archive was built with that the generated code
// must match (e.g. -fsanitize=thread). Both are overridable at run time
// via LOLRT_INC / LOLRT_CFLAGS, same as the lcc tool.
#ifndef LOL_NATIVE_INCLUDE_DIR
#define LOL_NATIVE_INCLUDE_DIR ""
#endif
#ifndef LOL_NATIVE_EXTRA_CFLAGS
#define LOL_NATIVE_EXTRA_CFLAGS ""
#endif

namespace lol::codegen {

namespace {

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

/// Build outcome carried through the single-flight cache so every waiter
/// on a failed build reports the same diagnostic.
struct NativeBuild {
  std::shared_ptr<const NativeProgram> prog;
  std::string error;
};

/// Loaded-program cache, keyed by the generated C text, single-flight:
/// N concurrent misses on one source invoke the host cc exactly once;
/// the losers of the old "first build wins" race used to each fork a
/// compiler whose object was then discarded. LRU-bounded: daemon clients
/// choose sources, so an unbounded map of dlopen()ed objects (plus their
/// C text keys) would be client-controlled memory growth — the same DoS
/// class the service's tenant maps guard against. Eviction only drops
/// the map's reference; the shared_ptr keeps the loaded object alive
/// until the last in-flight run (or NativeSlot memo) releases it, and
/// ~NativeProgram dlcloses then, so eviction can never unmap code that
/// is still executing. Failed builds are not retained (retryable).
SingleFlight<NativeBuild>& cache() {
  static auto* c = new SingleFlight<NativeBuild>(64);
  return *c;
}

}  // namespace

std::string describe_cc_failure(int wait_status) {
#ifdef LOL_HAVE_DLOPEN
  if (wait_status == -1) return "could not spawn the host C compiler";
  if (WIFSIGNALED(wait_status)) {
    return "host C compiler killed by signal " +
           std::to_string(WTERMSIG(wait_status));
  }
  if (WIFEXITED(wait_status)) {
    return "host C compiler failed (exit " +
           std::to_string(WEXITSTATUS(wait_status)) + ")";
  }
#endif
  return "host C compiler failed (status " + std::to_string(wait_status) +
         ")";
}

/// Private per-process scratch directory (mkdtemp, mode 0700) for the
/// native backend's .c/.so/.log files. The old scheme wrote predictable
/// lolnative_<pid>_<n> names into the shared world-writable temp dir —
/// an invitation for symlink games by other local users. Empty when the
/// directory cannot be created (builds then fail with a diagnostic).
const std::string& native_scratch_dir() {
  // The string is deliberately heap-allocated and never freed (the
  // static reference keeps it reachable, so leak checkers stay quiet):
  // the atexit cleanup below runs *after* normal static destruction
  // (it is registered mid-initialization, before this function-local
  // static's destructor), so the path must outlive every static.
  static const std::string& dir = *[]() -> std::string* {
    auto* made = new std::string();
    std::error_code ec;
    std::filesystem::path base = std::filesystem::temp_directory_path(ec);
    if (ec) base = "/tmp";
    std::string tmpl = (base / "lolnative_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
#ifdef LOL_HAVE_DLOPEN
    if (::mkdtemp(buf.data()) != nullptr) {
      *made = buf.data();
      // Best-effort tidy-up; scratch files themselves are unlinked as
      // soon as each object is loaded.
      std::atexit([] {
        std::error_code rm_ec;
        std::filesystem::remove(native_scratch_dir(), rm_ec);
      });
    }
#endif
    return made;
  }();
  return dir;
}

std::string native_cc() { return env_or("CC", "cc"); }

bool native_available() {
#ifndef LOL_HAVE_DLOPEN
  return false;
#else
  static const bool ok = [] {
    // $CC may carry flags or a launcher ("ccache cc"); the compile
    // command below interpolates it unquoted like make's $(CC), so the
    // probe must check only the first word or the two would disagree.
    std::string cc = native_cc();
    std::string word = cc.substr(0, cc.find_first_of(" \t"));
    std::string cmd =
        "command -v " + shell_quote(word) + " >/dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return ok;
#endif
}

NativeProgram::~NativeProgram() {
#ifdef LOL_HAVE_DLOPEN
  if (handle_ != nullptr) dlclose(handle_);
#endif
}

std::shared_ptr<const NativeProgram> NativeProgram::get_or_build(
    const ast::Program& program, const sema::Analysis& analysis,
    std::string* error) {
#ifndef LOL_HAVE_DLOPEN
  (void)program;
  (void)analysis;
  if (error != nullptr) *error = "native backend requires dlopen (POSIX)";
  return nullptr;
#else
  if (!native_available()) {
    if (error != nullptr) {
      *error = "no host C compiler ('" + native_cc() +
               "' not found; set $CC or install one)";
    }
    return nullptr;
  }

  std::string c_code;
  try {
    EmitOptions opts;
    opts.source_name = "<native-backend>";
    opts.emit_main = false;  // dlsym(lol_user_main), no process entry
    c_code = emit_c(program, analysis, opts);
  } catch (const support::LolError& e) {
    if (error != nullptr) {
      *error = std::string("cannot lower to C: ") + e.what();
    }
    return nullptr;
  }

  NativeBuild built = cache().get_or_build(
      c_code,
      [&]() -> NativeBuild {
        NativeBuild b;

        // Unique scratch names in the private 0700 scratch dir; the
        // files are unlinked as soon as the object is loaded (POSIX
        // keeps the mapping alive), so nothing leaks even on the error
        // paths below.
        const std::string& dir = native_scratch_dir();
        if (dir.empty()) {
          b.error = "cannot create native-backend scratch directory";
          return b;
        }
        static std::atomic<std::uint64_t> counter{0};
        std::string stem =
            (std::filesystem::path(dir) /
             ("lolnative_" + std::to_string(counter.fetch_add(1))))
                .string();
        std::string c_path = stem + ".c";
        std::string so_path = stem + ".so";
        std::string log_path = stem + ".log";

        auto cleanup = [&] {
          std::remove(c_path.c_str());
          std::remove(so_path.c_str());
          std::remove(log_path.c_str());
        };

        if (!driver::write_file(c_path, c_code)) {
          b.error = "cannot write " + c_path;
          return b;
        }

        std::string inc = env_or("LOLRT_INC", LOL_NATIVE_INCLUDE_DIR);
        std::string extra = env_or("LOLRT_CFLAGS", LOL_NATIVE_EXTRA_CFLAGS);
        // lolrt_* stays undefined in the object and resolves at dlopen
        // time against this executable's exports (ENABLE_EXPORTS /
        // -rdynamic).
        std::string cmd = native_cc() + " -std=c99 -O1 -fPIC -shared " +
                          (extra.empty() ? "" : extra + " ") +
                          shell_quote(c_path) + " -I" + shell_quote(inc) +
                          " -o " + shell_quote(so_path) + " 2>" +
                          shell_quote(log_path);
        static obs::Counter& cc_invocations =
            obs::Registry::global().counter(
                "lol_native_cc_invocations_total",
                "Host C compiler invocations by the native backend");
        static obs::Histogram& compile_ms =
            obs::Registry::global().histogram(
                "lol_native_compile_ms",
                "Host cc compile + dlopen latency, ms",
                {1.0, 5.0, 25.0, 100.0, 250.0, 1000.0, 5000.0});
        cc_invocations.inc();
        const auto t0 = std::chrono::steady_clock::now();
        int rc = std::system(cmd.c_str());
        if (rc != 0) {
          std::string log =
              driver::read_file(log_path).value_or("(no compiler output)");
          b.error = describe_cc_failure(rc) + ": " + cmd + "\n" + log;
          cleanup();
          return b;
        }

        void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (handle == nullptr) {
          const char* why = dlerror();
          b.error = std::string("dlopen failed: ") +
                    (why != nullptr ? why : "(unknown)") +
                    " — is the embedding executable exporting lolrt_* "
                    "(ENABLE_EXPORTS / -rdynamic)?";
          cleanup();
          return b;
        }
        auto entry =
            reinterpret_cast<lolrt_main_fn>(dlsym(handle, "lol_user_main"));
        cleanup();  // mapping stays valid after unlink
        if (entry == nullptr) {
          b.error = "generated object has no lol_user_main symbol";
          dlclose(handle);
          return b;
        }

        auto prog = std::shared_ptr<NativeProgram>(new NativeProgram());
        prog->handle_ = handle;
        prog->entry_ = entry;
        b.prog = std::move(prog);
        compile_ms.observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
        return b;
      },
      [](const NativeBuild& b) { return b.prog != nullptr; });
  if (built.prog == nullptr && error != nullptr) {
    *error = built.error.empty() ? "native build failed" : built.error;
  }
  return built.prog;
#endif
}

}  // namespace lol::codegen

#include "codegen/native_backend.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <unordered_map>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <unistd.h>
#define LOL_HAVE_DLOPEN 1
#endif

#include "codegen/c_emitter.hpp"
#include "driver/cli.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

// Baked in by CMake: where lolrt_c.h lives (the generated C includes it)
// and any flags the lol archive was built with that the generated code
// must match (e.g. -fsanitize=thread). Both are overridable at run time
// via LOLRT_INC / LOLRT_CFLAGS, same as the lcc tool.
#ifndef LOL_NATIVE_INCLUDE_DIR
#define LOL_NATIVE_INCLUDE_DIR ""
#endif
#ifndef LOL_NATIVE_EXTRA_CFLAGS
#define LOL_NATIVE_EXTRA_CFLAGS ""
#endif

namespace lol::codegen {

namespace {

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string env_or(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? v : fallback;
}

/// Loaded-program cache, keyed by the generated C text. LRU-bounded:
/// daemon clients choose sources, so an unbounded map of dlopen()ed
/// objects (plus their C text keys) would be client-controlled memory
/// growth — the same DoS class the service's tenant maps guard against.
/// Eviction only drops the map's reference; the shared_ptr keeps the
/// loaded object alive until the last in-flight run (or NativeSlot memo)
/// releases it, and ~NativeProgram dlcloses then, so eviction can never
/// unmap code that is still executing.
constexpr std::size_t kCacheCapacity = 64;

struct CacheEntry {
  std::shared_ptr<const NativeProgram> prog;
  std::uint64_t stamp = 0;  // recency; larger = more recently used
};

std::mutex cache_m;
std::uint64_t cache_clock = 0;
std::unordered_map<std::string, CacheEntry>& cache() {
  static auto* c = new std::unordered_map<std::string, CacheEntry>;
  return *c;
}

/// Caller holds cache_m.
void evict_lru_locked() {
  while (cache().size() >= kCacheCapacity) {
    auto victim = cache().begin();
    for (auto it = cache().begin(); it != cache().end(); ++it) {
      if (it->second.stamp < victim->second.stamp) victim = it;
    }
    cache().erase(victim);
  }
}

}  // namespace

std::string native_cc() { return env_or("CC", "cc"); }

bool native_available() {
#ifndef LOL_HAVE_DLOPEN
  return false;
#else
  static const bool ok = [] {
    // $CC may carry flags or a launcher ("ccache cc"); the compile
    // command below interpolates it unquoted like make's $(CC), so the
    // probe must check only the first word or the two would disagree.
    std::string cc = native_cc();
    std::string word = cc.substr(0, cc.find_first_of(" \t"));
    std::string cmd =
        "command -v " + shell_quote(word) + " >/dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return ok;
#endif
}

NativeProgram::~NativeProgram() {
#ifdef LOL_HAVE_DLOPEN
  if (handle_ != nullptr) dlclose(handle_);
#endif
}

std::shared_ptr<const NativeProgram> NativeProgram::get_or_build(
    const ast::Program& program, const sema::Analysis& analysis,
    std::string* error) {
#ifndef LOL_HAVE_DLOPEN
  (void)program;
  (void)analysis;
  if (error != nullptr) *error = "native backend requires dlopen (POSIX)";
  return nullptr;
#else
  if (!native_available()) {
    if (error != nullptr) {
      *error = "no host C compiler ('" + native_cc() +
               "' not found; set $CC or install one)";
    }
    return nullptr;
  }

  std::string c_code;
  try {
    EmitOptions opts;
    opts.source_name = "<native-backend>";
    opts.emit_main = false;  // dlsym(lol_user_main), no process entry
    c_code = emit_c(program, analysis, opts);
  } catch (const support::LolError& e) {
    if (error != nullptr) {
      *error = std::string("cannot lower to C: ") + e.what();
    }
    return nullptr;
  }

  {
    std::lock_guard<std::mutex> g(cache_m);
    auto it = cache().find(c_code);
    if (it != cache().end()) {
      it->second.stamp = ++cache_clock;
      return it->second.prog;
    }
  }

  // Unique scratch names; the files are unlinked as soon as the object
  // is loaded (POSIX keeps the mapping alive), so nothing leaks even on
  // the error paths below.
  static std::atomic<std::uint64_t> counter{0};
  std::error_code fs_ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(fs_ec);
  if (fs_ec) dir = "/tmp";
  std::string stem =
      (dir / ("lolnative_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
          .string();
  std::string c_path = stem + ".c";
  std::string so_path = stem + ".so";
  std::string log_path = stem + ".log";

  auto cleanup = [&] {
    std::remove(c_path.c_str());
    std::remove(so_path.c_str());
    std::remove(log_path.c_str());
  };

  if (!driver::write_file(c_path, c_code)) {
    if (error != nullptr) *error = "cannot write " + c_path;
    return nullptr;
  }

  std::string inc = env_or("LOLRT_INC", LOL_NATIVE_INCLUDE_DIR);
  std::string extra = env_or("LOLRT_CFLAGS", LOL_NATIVE_EXTRA_CFLAGS);
  // lolrt_* stays undefined in the object and resolves at dlopen time
  // against this executable's exports (ENABLE_EXPORTS / -rdynamic).
  std::string cmd = native_cc() + " -std=c99 -O1 -fPIC -shared " +
                    (extra.empty() ? "" : extra + " ") + shell_quote(c_path) +
                    " -I" + shell_quote(inc) + " -o " + shell_quote(so_path) +
                    " 2>" + shell_quote(log_path);
  static obs::Counter& cc_invocations = obs::Registry::global().counter(
      "lol_native_cc_invocations_total",
      "Host C compiler invocations by the native backend");
  cc_invocations.inc();
  if (std::system(cmd.c_str()) != 0) {
    if (error != nullptr) {
      std::string log =
          driver::read_file(log_path).value_or("(no compiler output)");
      *error = "host C compiler failed: " + cmd + "\n" + log;
    }
    cleanup();
    return nullptr;
  }

  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* why = dlerror();
      *error = std::string("dlopen failed: ") +
               (why != nullptr ? why : "(unknown)") +
               " — is the embedding executable exporting lolrt_* "
               "(ENABLE_EXPORTS / -rdynamic)?";
    }
    cleanup();
    return nullptr;
  }
  auto entry =
      reinterpret_cast<lolrt_main_fn>(dlsym(handle, "lol_user_main"));
  cleanup();  // mapping stays valid after unlink
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "generated object has no lol_user_main symbol";
    }
    dlclose(handle);
    return nullptr;
  }

  auto prog = std::shared_ptr<NativeProgram>(new NativeProgram());
  prog->handle_ = handle;
  prog->entry_ = entry;

  std::lock_guard<std::mutex> g(cache_m);
  evict_lru_locked();
  // First build wins if two threads raced on the same source; the loser's
  // object is dropped (its dlclose is safe — nothing ran through it yet).
  auto [it, inserted] = cache().emplace(
      std::move(c_code), CacheEntry{std::move(prog), ++cache_clock});
  if (!inserted) it->second.stamp = cache_clock;
  return it->second.prog;
#endif
}

}  // namespace lol::codegen

#include "codegen/jit_analysis.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace lol::codegen {

namespace {

using vm::Op;

/// Virtual state of one tracked slot at a program point. Normalized so
/// defaulted operator== is exact: untyped states zero `type`, unbound
/// states zero everything, unknown states (an unguarded slot whose entry
/// binding we never learned — possible only for unbind-first locals)
/// zero the rest.
struct SlotSt {
  bool unknown = false;
  bool bound = false;
  bool typed = false;
  bool from_decl = false;  // current binding made by an in-region declare
  SpecType type = SpecType::kInt;

  bool operator==(const SlotSt&) const = default;
};

SlotSt st_unknown() { return SlotSt{.unknown = true}; }
SlotSt st_unbound() { return SlotSt{.bound = false}; }
SlotSt st_shape() { return SlotSt{.bound = true, .typed = false}; }
SlotSt st_typed(SpecType t, bool from_decl) {
  return SlotSt{
      .bound = true, .typed = true, .from_decl = from_decl, .type = t};
}

/// State snapshot at one program point: virtual stack types plus every
/// tracked slot's state (IT uses SpecLocal::kItSlot). Slots tracked
/// *after* the snapshot was taken resolve to their entry state — sound
/// because "tracked later" means "untouched up to here".
struct Snap {
  std::vector<SpecType> vstack;
  std::vector<std::pair<std::int32_t, SlotSt>> slots;  // sorted by slot
};

/// One frame's static context: its pc range and slot -> decl-site map.
struct FrameInfo {
  std::size_t begin = 0, end = 0;
  std::map<std::int32_t, std::int32_t> decl_of;  // slot -> chunk decl idx
};

std::optional<SpecType> spec_of(ast::TypeKind t) {
  switch (t) {
    case ast::TypeKind::kNumbr: return SpecType::kInt;
    case ast::TypeKind::kNumbar: return SpecType::kDbl;
    case ast::TypeKind::kTroof: return SpecType::kBool;
    default: return std::nullopt;
  }
}

const char* type_name(SpecType t) {
  switch (t) {
    case SpecType::kInt: return "numbr";
    case SpecType::kDbl: return "numbar";
    case SpecType::kBool: return "troof";
  }
  return "?";
}

/// Simulates one candidate region and, on success, fills a RegionPlan.
class RegionSim {
 public:
  RegionSim(const vm::Chunk& chunk, const FrameInfo& frame,
            const std::vector<bool>& jump_target, std::size_t lo)
      : chunk_(chunk), frame_(frame), jump_target_(jump_target), lo_(lo) {}

  /// Returns the planned region, or nullopt when too little specializes.
  std::optional<RegionPlan> run() {
    simulate();
    if (!viable()) return std::nullopt;
    return finalize();
  }

 private:
  // ---- per-local bookkeeping -------------------------------------------

  struct LocalRec {
    std::int32_t slot = SpecLocal::kItSlot;
    std::optional<SpecGuardKind> guard;  // nullopt: unguarded (IT or
                                         // unbind-first)
    bool entry_bound = true;  // drives the unbind writeback decision
    bool int_only = true;
    std::uint32_t uses = 0;
  };

  std::int32_t track(std::int32_t slot, std::optional<SpecGuardKind> guard,
                     bool entry_bound) {
    auto it = local_ix_.find(slot);
    if (it != local_ix_.end()) return it->second;
    auto ix = static_cast<std::int32_t>(locals_.size());
    locals_.push_back(LocalRec{slot, guard, entry_bound, true, 0});
    local_ix_[slot] = ix;
    return ix;
  }

  [[nodiscard]] SlotSt entry_state(std::int32_t slot) const {
    if (slot == SpecLocal::kItSlot) return st_shape();  // IT: type unknown
    auto it = local_ix_.find(slot);
    if (it == local_ix_.end()) return st_unknown();  // never tracked: only
                                                     // reached for slots
                                                     // tracked after both
                                                     // snapshots — but the
                                                     // resolver handles
                                                     // that before asking
    const LocalRec& rec = locals_[static_cast<std::size_t>(it->second)];
    if (!rec.guard) return st_unknown();
    switch (*rec.guard) {
      case SpecGuardKind::kScalarInt: return st_typed(SpecType::kInt, false);
      case SpecGuardKind::kScalarDbl: return st_typed(SpecType::kDbl, false);
      case SpecGuardKind::kScalarBool:
        return st_typed(SpecType::kBool, false);
      case SpecGuardKind::kScalarShape: return st_shape();
      case SpecGuardKind::kUnbound: return st_unbound();
      default: return st_unknown();
    }
  }

  void set_state(std::int32_t slot, SlotSt st) { state_[slot] = st; }

  [[nodiscard]] SlotSt state_of(std::int32_t slot) const {
    auto it = state_.find(slot);
    if (it != state_.end()) return it->second;
    if (slot == SpecLocal::kItSlot) return st_shape();
    return entry_state(slot);
  }

  void touch(std::int32_t ix, bool dbl) {
    auto& rec = locals_[static_cast<std::size_t>(ix)];
    ++rec.uses;
    if (dbl) rec.int_only = false;
  }

  // ---- snapshots -------------------------------------------------------

  [[nodiscard]] Snap snapshot() const {
    Snap s;
    s.vstack = vstack_;
    for (const auto& [slot, st] : state_) s.slots.emplace_back(slot, st);
    return s;
  }

  [[nodiscard]] SlotSt resolve(const Snap& s, std::int32_t slot) const {
    auto it = std::lower_bound(
        s.slots.begin(), s.slots.end(), slot,
        [](const auto& p, std::int32_t k) { return p.first < k; });
    if (it != s.slots.end() && it->first == slot) return it->second;
    return entry_state(slot);
  }

  [[nodiscard]] bool snaps_equal(const Snap& a, const Snap& b) const {
    if (a.vstack != b.vstack) return false;
    std::set<std::int32_t> keys;
    for (const auto& [slot, st] : a.slots) keys.insert(slot);
    for (const auto& [slot, st] : b.slots) keys.insert(slot);
    for (std::int32_t slot : keys) {
      if (!(resolve(a, slot) == resolve(b, slot))) return false;
    }
    return true;
  }

  // ---- the linear walk -------------------------------------------------

  static constexpr std::size_t kMaxRegionOps = 4096;
  static constexpr std::size_t kMaxLocals = 24;
  static constexpr std::size_t kMaxArrs = 8;

  void simulate() {
    std::size_t pc = lo_;
    bool dead = false;  // just after an unconditional in-region jump
    while (pc < frame_.end && acts_.size() < kMaxRegionOps) {
      if (dead) {
        // Linearly unreachable: adopt the state of the first pending
        // forward edge into this pc, if any; otherwise the region ends.
        auto [it, end] = pending_.equal_range(pc);
        if (it == end) break;
        vstack_ = it->second.second.vstack;
        state_.clear();
        for (const auto& [slot, st] : it->second.second.slots) {
          state_[slot] = st;
        }
        internal_edges_[it->second.first] = pc;
        pending_.erase(it);
        dead = false;
      }
      if (pc < jump_target_.size() && jump_target_[pc]) {
        canon_[pc] = snapshot();
      }
      // Forward edges recorded earlier that land here: internal when the
      // states agree, demoted to generic-resume exits when they don't.
      for (auto [it, end] = pending_.equal_range(pc); it != end;) {
        if (snaps_equal(it->second.second, snapshot())) {
          internal_edges_[it->second.first] = pc;
        } else {
          exit_snaps_.push_back({it->second.first, pc, it->second.second});
        }
        it = pending_.erase(it);
      }
      SpecAct act;
      Edge edge = Edge::kNone;
      std::vector<SpecType> before = vstack_;
      if (!step(chunk_.code[pc], pc, &act, &edge)) break;
      acts_.push_back(act);
      vstack_at_.push_back(std::move(before));
      max_depth_ = std::max(max_depth_,
                            static_cast<std::uint32_t>(vstack_.size()));
      if (edge == Edge::kDead) dead = true;
      ++pc;
    }
    hi_ = lo_ + acts_.size();
    if (!dead && hi_ > lo_) {
      exit_snaps_.push_back({hi_, hi_, snapshot()});
    }
    // Every still-pending forward edge leaves the region.
    for (auto& [target, rec] : pending_) {
      exit_snaps_.push_back({rec.first, target, std::move(rec.second)});
    }
    pending_.clear();
  }

  enum class Edge : std::uint8_t { kNone, kDead };

  /// Routes one branch/jump edge: internal when the target is a pc we
  /// already passed with a matching state (or a future pc — resolved on
  /// arrival), an exit edge otherwise.
  void route_edge(std::size_t from_pc, std::size_t target) {
    Snap s = snapshot();
    if (target > from_pc && target < frame_.end) {
      pending_.emplace(target, std::make_pair(from_pc, std::move(s)));
      return;
    }
    auto it = canon_.find(target);
    if (target >= lo_ && target <= from_pc && it != canon_.end() &&
        snaps_equal(s, it->second)) {
      internal_edges_[from_pc] = target;
      return;
    }
    exit_snaps_.push_back({from_pc, target, std::move(s)});
  }

  [[nodiscard]] const vm::DeclMeta* frame_decl(std::int32_t slot) const {
    auto it = frame_.decl_of.find(slot);
    if (it == frame_.decl_of.end()) return nullptr;
    return &chunk_.decls[static_cast<std::size_t>(it->second)];
  }

  /// Whether a store of `t` into a cell declared by `m` is the identity
  /// the specialized writeback performs (no SRSLY stype coercion).
  static bool stype_ok(const vm::DeclMeta* m, SpecType t) {
    if (m == nullptr || !m->srsly || !m->static_type) return true;
    return spec_of(*m->static_type) == t;
  }

  bool step(const vm::Instr& in, std::size_t pc, SpecAct* act, Edge* edge) {
    const std::size_t n = vstack_.size();
    switch (in.op) {
      case Op::kConst: {
        if (n >= kMaxVstack) return false;
        const rt::Value& v = chunk_.consts[static_cast<std::size_t>(in.a)];
        if (v.is_numbr()) {
          act->kind = SpecAct::Kind::kConst;
          act->out = SpecType::kInt;
          act->imm = v.numbr_raw();
        } else if (v.is_numbar()) {
          double d = v.numbar_raw();
          std::int64_t bits;
          static_assert(sizeof d == sizeof bits);
          __builtin_memcpy(&bits, &d, sizeof bits);
          act->kind = SpecAct::Kind::kConst;
          act->out = SpecType::kDbl;
          act->imm = bits;
        } else if (v.is_troof()) {
          act->kind = SpecAct::Kind::kConst;
          act->out = SpecType::kBool;
          act->imm = v.troof_raw() ? 1 : 0;
        } else {
          return false;
        }
        vstack_.push_back(act->out);
        return true;
      }
      case Op::kPop:
        if (n < 1) return false;
        vstack_.pop_back();
        act->kind = SpecAct::Kind::kPop;
        return true;
      case Op::kLoadIt: {
        SlotSt st = state_of(SpecLocal::kItSlot);
        if (!st.typed || n >= kMaxVstack) return false;
        act->kind = SpecAct::Kind::kLoadLocal;
        act->out = st.type;
        act->local = track(SpecLocal::kItSlot, std::nullopt, true);
        touch(act->local, st.type == SpecType::kDbl);
        vstack_.push_back(st.type);
        return true;
      }
      case Op::kStoreIt: {
        if (n < 1) return false;
        SpecType t = vstack_.back();
        vstack_.pop_back();
        act->kind = SpecAct::Kind::kStoreLocal;
        act->in = t;
        act->local = track(SpecLocal::kItSlot, std::nullopt, true);
        touch(act->local, t == SpecType::kDbl);
        set_state(SpecLocal::kItSlot, st_typed(t, false));
        return true;
      }
      case Op::kDeclare: {
        const vm::DeclMeta& m = chunk_.decls[static_cast<std::size_t>(in.a)];
        if (m.symmetric || m.is_array || m.has_size) return false;
        if (arrs_.count(m.slot) != 0) return false;
        SlotSt st = state_of(m.slot);
        bool first = local_ix_.find(m.slot) == local_ix_.end();
        if (!first && (st.unknown || st.bound)) return false;
        SpecType t;
        if (m.has_init) {
          if (n < 1) return false;
          t = vstack_.back();
          if (!stype_ok(&m, t)) return false;
          vstack_.pop_back();
          act->kind = SpecAct::Kind::kDeclare;
          act->in = t;
        } else {
          if (!m.static_type) return false;
          auto zt = spec_of(*m.static_type);
          if (!zt || *zt == SpecType::kBool) {
            // zero_of(TROOF) exists, but a zero-init TROOF local is not
            // worth a lattice case; NUMBR/NUMBAR cover the kernels.
            if (!zt) return false;
          }
          t = *zt;
          act->kind = SpecAct::Kind::kDeclareZero;
        }
        act->out = t;
        act->aux = in.a;
        if (locals_.size() >= kMaxLocals && first) return false;
        act->local = track(m.slot, SpecGuardKind::kUnbound, false);
        touch(act->local, t == SpecType::kDbl);
        set_state(m.slot, st_typed(t, true));
        return true;
      }
      case Op::kUnbind: {
        std::int32_t slot = in.a;
        if (arrs_.count(slot) != 0) return false;
        if (local_ix_.find(slot) == local_ix_.end() &&
            locals_.size() >= kMaxLocals) {
          return false;
        }
        // First-touch-by-unbind needs no guard: op_unbind resets the cell
        // whatever it held, so the writeback is valid unconditionally.
        act->kind = SpecAct::Kind::kUnbind;
        act->local = track(slot, std::nullopt, true);
        touch(act->local, false);
        set_state(slot, st_unbound());
        return true;
      }
      case Op::kLoadVar: {
        auto flags = static_cast<std::uint32_t>(in.b);
        if (flags == 0) {
          if (n >= kMaxVstack || arrs_.count(in.a) != 0) return false;
          SlotSt st = state_of(in.a);
          bool first = local_ix_.find(in.a) == local_ix_.end();
          if (first) {
            const vm::DeclMeta* m = frame_decl(in.a);
            if (m != nullptr && (m->symmetric || m->is_array)) return false;
            std::optional<SpecType> hint =
                m != nullptr && m->hint ? spec_of(*m->hint) : std::nullopt;
            if (!hint || locals_.size() >= kMaxLocals) return false;
            SpecGuardKind g = *hint == SpecType::kInt
                                  ? SpecGuardKind::kScalarInt
                              : *hint == SpecType::kDbl
                                  ? SpecGuardKind::kScalarDbl
                                  : SpecGuardKind::kScalarBool;
            act->local = track(in.a, g, true);
            st = st_typed(*hint, false);
          } else {
            if (!st.bound || !st.typed) return false;
            act->local = local_ix_.at(in.a);
          }
          act->kind = SpecAct::Kind::kLoadLocal;
          act->out = st.type;
          touch(act->local, st.type == SpecType::kDbl);
          vstack_.push_back(st.type);
          return true;
        }
        if (flags == vm::kAccIndexed) {
          return arr_access(in.a, /*store=*/false, act);
        }
        return false;
      }
      case Op::kStoreVar: {
        auto flags = static_cast<std::uint32_t>(in.b);
        if (flags == 0) {
          if (n < 1 || arrs_.count(in.a) != 0) return false;
          SpecType t = vstack_.back();
          SlotSt st = state_of(in.a);
          bool first = local_ix_.find(in.a) == local_ix_.end();
          const vm::DeclMeta* m = frame_decl(in.a);
          if (first) {
            if (m != nullptr && (m->symmetric || m->is_array)) return false;
            if (!stype_ok(m, t) || locals_.size() >= kMaxLocals) {
              return false;
            }
            act->local = track(in.a, SpecGuardKind::kScalarShape, true);
          } else {
            if (st.unknown || !st.bound || !stype_ok(m, t)) return false;
            act->local = local_ix_.at(in.a);
          }
          vstack_.pop_back();
          act->kind = SpecAct::Kind::kStoreLocal;
          act->in = t;
          touch(act->local, t == SpecType::kDbl);
          set_state(in.a, st_typed(t, st.from_decl));
          return true;
        }
        if (flags == vm::kAccIndexed) {
          return arr_access(in.a, /*store=*/true, act);
        }
        return false;
      }
      case Op::kBinary: {
        if (n < 2) return false;
        SpecType r = vstack_[n - 1], l = vstack_[n - 2];
        std::int32_t promote = 0;
        if (l != r) {
          // NUMBR mixed with NUMBAR: rt::arith takes the float path and
          // Value::saem compares numerically, so the int side promotes
          // to double and the op proceeds as a double op. Any other mix
          // (bool with a number) stays generic.
          bool int_dbl = (l == SpecType::kInt && r == SpecType::kDbl) ||
                         (l == SpecType::kDbl && r == SpecType::kInt);
          if (!int_dbl) return false;
          promote = l == SpecType::kInt ? kSpecBinPromoteLhs
                                        : kSpecBinPromoteRhs;
          l = SpecType::kDbl;
        }
        auto op = static_cast<ast::BinOp>(in.a);
        std::optional<SpecType> out = bin_result(l, op);
        if (!out) return false;
        vstack_.pop_back();
        vstack_.back() = *out;
        act->kind = SpecAct::Kind::kBin;
        act->in = l;
        act->out = *out;
        act->aux = in.a | promote;
        return true;
      }
      case Op::kUnary: {
        if (n < 1) return false;
        SpecType t = vstack_.back();
        auto op = static_cast<ast::UnOp>(in.a);
        if (op == ast::UnOp::kNot) {
          if (t == SpecType::kDbl) return false;  // ±0.0 vs NaN subtleties
          act->kind = SpecAct::Kind::kNot;
          act->in = t;
          act->out = SpecType::kBool;
          vstack_.back() = SpecType::kBool;
          return true;
        }
        if (op == ast::UnOp::kSquar && t != SpecType::kBool) {
          act->kind = SpecAct::Kind::kSquar;
          act->in = t;
          act->out = t;
          return true;
        }
        return false;  // UNSQUAR/FLIP throw on bad operands: stay generic
      }
      case Op::kCast: {
        if (n < 1) return false;
        SpecType t = vstack_.back();
        auto target = spec_of(static_cast<ast::TypeKind>(in.a));
        if (!target) return false;
        if (*target == t) {
          act->kind = SpecAct::Kind::kCastNop;
          act->in = act->out = t;
          return true;
        }
        if (t == SpecType::kInt && *target == SpecType::kDbl) {
          act->kind = SpecAct::Kind::kCastIntToDbl;
          act->in = t;
          act->out = SpecType::kDbl;
          vstack_.back() = SpecType::kDbl;
          return true;
        }
        return false;
      }
      case Op::kMe:
      case Op::kMahFrenz:
        if (n >= kMaxVstack) return false;
        act->kind = in.op == Op::kMe ? SpecAct::Kind::kMe
                                     : SpecAct::Kind::kMahFrenz;
        act->out = SpecType::kInt;
        vstack_.push_back(SpecType::kInt);
        return true;
      case Op::kJump: {
        act->kind = SpecAct::Kind::kJmp;
        act->aux = in.a;
        route_edge(pc, static_cast<std::size_t>(in.a));
        *edge = Edge::kDead;
        return true;
      }
      case Op::kJumpIfFalse: {
        if (n < 1) return false;
        SpecType t = vstack_.back();
        if (t == SpecType::kDbl) return false;
        vstack_.pop_back();
        act->kind = SpecAct::Kind::kBranch;
        act->in = t;
        act->aux = in.a;
        route_edge(pc, static_cast<std::size_t>(in.a));
        return true;
      }
      default:
        return false;
    }
  }

  [[nodiscard]] static std::optional<SpecType> bin_result(SpecType t,
                                                          ast::BinOp op) {
    using B = ast::BinOp;
    switch (t) {
      case SpecType::kInt:
        switch (op) {
          case B::kSum:
          case B::kDiff:
          case B::kProdukt:
          case B::kBiggr:
          case B::kSmallr:
            return SpecType::kInt;
          case B::kBothSaem:
          case B::kDiffrint:
          case B::kBigger:
          case B::kSmallrCmp:
            return SpecType::kBool;
          default:
            return std::nullopt;  // QUOSHUNT/MOD throw on zero
        }
      case SpecType::kDbl:
        switch (op) {
          case B::kSum:
          case B::kDiff:
          case B::kProdukt:
          case B::kBiggr:   // maxsd: NaN picks rhs, matching x>y?x:y
          case B::kSmallr:  // minsd: same shape
            return SpecType::kDbl;
          case B::kBigger:
          case B::kSmallrCmp:
          case B::kBothSaem:  // Value::saem(dbl,dbl) is IEEE ==
          case B::kDiffrint:
            return SpecType::kBool;
          default:
            return std::nullopt;
        }
      case SpecType::kBool:
        switch (op) {
          case B::kBothOf:
          case B::kEitherOf:
          case B::kWonOf:
          case B::kBothSaem:
          case B::kDiffrint:
            return SpecType::kBool;
          default:
            return std::nullopt;
        }
    }
    return std::nullopt;
  }

  bool arr_access(std::int32_t slot, bool store, SpecAct* act) {
    if (local_ix_.count(slot) != 0) return false;  // scalar-tracked
    const vm::DeclMeta* m = frame_decl(slot);
    // Private arrays need SRSLY (typed lanes, identity store cast);
    // symmetric arrays are always typed 8-byte lanes, and their local
    // accesses keep the VM's schedule_yield/sim-time behavior because
    // the specialized helper goes through the same rt::sym_read/write.
    if (m == nullptr || !m->is_array || (!m->symmetric && !m->srsly)) {
      return false;
    }
    auto elem = spec_of(m->elem);
    if (!elem || *elem == SpecType::kBool) return false;
    auto it = arrs_.find(slot);
    if (it == arrs_.end()) {
      if (arrs_.size() >= kMaxArrs) return false;
      arrs_[slot] = *elem;
    }
    const std::size_t n = vstack_.size();
    if (store) {
      // Stack: ... index value(top). Pops both.
      if (n < 2 || vstack_[n - 1] != *elem ||
          vstack_[n - 2] != SpecType::kInt) {
        return false;
      }
      vstack_.pop_back();
      vstack_.pop_back();
      act->kind = SpecAct::Kind::kArrStore;
      act->in = *elem;
    } else {
      if (n < 1 || vstack_[n - 1] != SpecType::kInt) return false;
      vstack_.back() = *elem;
      act->kind = SpecAct::Kind::kArrLoad;
      act->out = *elem;
    }
    act->aux = slot;
    return true;
  }

  // ---- plan assembly ---------------------------------------------------

  [[nodiscard]] bool viable() const {
    if (acts_.size() < 3) return false;
    for (const SpecAct& a : acts_) {
      switch (a.kind) {
        case SpecAct::Kind::kBin:
        case SpecAct::Kind::kNot:
        case SpecAct::Kind::kSquar:
        case SpecAct::Kind::kLoadLocal:
        case SpecAct::Kind::kStoreLocal:
        case SpecAct::Kind::kDeclare:
        case SpecAct::Kind::kDeclareZero:
        case SpecAct::Kind::kArrLoad:
        case SpecAct::Kind::kArrStore:
        case SpecAct::Kind::kCastIntToDbl:
          return true;
        default:
          break;
      }
    }
    return false;
  }

  RegionPlan finalize() {
    RegionPlan plan;
    plan.lo = lo_;
    plan.hi = hi_;
    plan.acts = acts_;
    plan.vstack_at = vstack_at_;
    plan.max_depth = max_depth_;

    // Locals: one bank quad each; the two hottest always-integer locals
    // get the free callee-saved GPRs (linear scan by static use count —
    // every local's live range spans the whole region, so density is the
    // whole ordering).
    for (std::size_t i = 0; i < locals_.size(); ++i) {
      SpecLocal sl;
      sl.slot = locals_[i].slot;
      sl.bank = static_cast<std::int32_t>(kMaxVstack + i);
      sl.int_only = locals_[i].int_only;
      sl.uses = locals_[i].uses;
      plan.locals.push_back(sl);
    }
    static constexpr std::int32_t kCalleeSavedHomes[] = {15, 5};  // r15, rbp
    std::vector<std::size_t> order(plan.locals.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return plan.locals[a].uses > plan.locals[b].uses;
    });
    std::size_t next_reg = 0;
    for (std::size_t ix : order) {
      if (next_reg >= std::size(kCalleeSavedHomes)) break;
      if (!plan.locals[ix].int_only) continue;
      plan.locals[ix].reg = kCalleeSavedHomes[next_reg++];
    }
    plan.bank_slots =
        static_cast<std::int32_t>(kMaxVstack + plan.locals.size());

    // Guards, in slot order for determinism: scalar guards write their
    // payload into the local's bank slot.
    for (const auto& [slot, ix] : local_ix_) {
      const LocalRec& rec = locals_[static_cast<std::size_t>(ix)];
      if (!rec.guard) continue;
      SpecGuard g;
      g.slot = slot;
      g.kind = *rec.guard;
      if (g.kind == SpecGuardKind::kScalarInt ||
          g.kind == SpecGuardKind::kScalarDbl ||
          g.kind == SpecGuardKind::kScalarBool) {
        g.bank = plan.locals[static_cast<std::size_t>(ix)].bank;
      }
      plan.guards.push_back(g);
    }
    for (const auto& [slot, elem] : arrs_) {
      SpecGuard g;
      g.slot = slot;
      const vm::DeclMeta* m = frame_decl(slot);
      if (m != nullptr && m->symmetric) {
        g.kind = elem == SpecType::kInt ? SpecGuardKind::kSymArrInt
                                        : SpecGuardKind::kSymArrDbl;
      } else {
        g.kind = elem == SpecType::kInt ? SpecGuardKind::kArrInt
                                        : SpecGuardKind::kArrDbl;
      }
      plan.guards.push_back(g);
    }

    // Exits: one materialization + writeback plan per recorded edge.
    for (const ExitSnap& e : exit_snaps_) {
      SpecExit x;
      x.at_pc = e.at_pc;
      x.target = e.target;
      x.vstack = e.snap.vstack;
      for (const auto& [slot, ix] : local_ix_) {
        SlotSt st = resolve(e.snap, slot);
        const LocalRec& rec = locals_[static_cast<std::size_t>(ix)];
        SpecWriteback wb;
        wb.local = ix;
        wb.slot = slot;
        if (slot == SpecLocal::kItSlot) {
          if (!st.typed) continue;
          wb.kind = SpecWriteback::Kind::kIt;
          wb.type = st.type;
        } else if (st.unknown) {
          continue;  // untouched on this path, cell untouched at runtime
        } else if (!st.bound) {
          if (!rec.entry_bound) continue;  // was (and stayed) unbound
          wb.kind = SpecWriteback::Kind::kUnbind;
        } else if (!st.typed) {
          continue;  // shape-guarded, never written: cell untouched
        } else if (st.from_decl) {
          wb.kind = SpecWriteback::Kind::kDeclare;
          wb.decl = frame_.decl_of.at(slot);
          wb.type = st.type;
        } else {
          wb.kind = SpecWriteback::Kind::kStore;
          wb.type = st.type;
        }
        x.writebacks.push_back(wb);
      }
      plan.exits.push_back(std::move(x));
    }
    std::stable_sort(plan.exits.begin(), plan.exits.end(),
                     [](const SpecExit& a, const SpecExit& b) {
                       return a.at_pc < b.at_pc;
                     });

    // Step batches: one check per basic block. Leaders are the entry,
    // every jump target, every post-branch pc and every pc after a
    // throwing specialized op (array bounds) — so a throwing op is always
    // the last charged op of its batch and the charge is VM-exact.
    std::set<std::size_t> leaders{lo_};
    for (std::size_t pc = lo_; pc < hi_; ++pc) {
      if (pc < jump_target_.size() && jump_target_[pc]) leaders.insert(pc);
      const SpecAct& a = acts_[pc - lo_];
      bool ends_block = a.kind == SpecAct::Kind::kJmp ||
                        a.kind == SpecAct::Kind::kBranch ||
                        a.kind == SpecAct::Kind::kArrLoad ||
                        a.kind == SpecAct::Kind::kArrStore;
      if (ends_block && pc + 1 < hi_) leaders.insert(pc + 1);
    }
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
      auto next = std::next(it);
      std::size_t end = next == leaders.end() ? hi_ : *next;
      plan.segments.push_back(
          {*it, static_cast<std::int32_t>(end - *it)});
    }
    return plan;
  }

 public:
  /// Internal-edge resolution: branch pc -> in-region target. Exposed to
  /// the emitter through RegionPlan? No — the emitter re-derives it from
  /// exits: a branch with no exit at its pc is internal.
  const vm::Chunk& chunk_;
  const FrameInfo& frame_;
  const std::vector<bool>& jump_target_;
  std::size_t lo_;
  std::size_t hi_ = 0;

 private:
  struct ExitSnap {
    std::size_t at_pc;
    std::size_t target;
    Snap snap;
  };

  std::vector<SpecType> vstack_;
  std::map<std::int32_t, SlotSt> state_;
  std::map<std::int32_t, std::int32_t> local_ix_;
  std::vector<LocalRec> locals_;
  std::map<std::int32_t, SpecType> arrs_;
  std::vector<SpecAct> acts_;
  std::vector<std::vector<SpecType>> vstack_at_;
  std::map<std::size_t, Snap> canon_;
  std::multimap<std::size_t, std::pair<std::size_t, Snap>> pending_;
  std::map<std::size_t, std::size_t> internal_edges_;
  std::vector<ExitSnap> exit_snaps_;
  std::uint32_t max_depth_ = 0;
};

std::vector<FrameInfo> frame_infos(const vm::Chunk& chunk) {
  std::vector<FrameInfo> frames;
  FrameInfo main;
  main.begin = 0;
  main.end = chunk.funcs.empty()
                 ? chunk.code.size()
                 : static_cast<std::size_t>(chunk.funcs.front().entry);
  frames.push_back(main);
  for (std::size_t f = 0; f < chunk.funcs.size(); ++f) {
    FrameInfo fi;
    fi.begin = chunk.funcs[f].entry;
    fi.end = f + 1 < chunk.funcs.size()
                 ? static_cast<std::size_t>(chunk.funcs[f + 1].entry)
                 : chunk.code.size();
    frames.push_back(fi);
  }
  for (FrameInfo& fi : frames) {
    for (std::size_t pc = fi.begin; pc < fi.end; ++pc) {
      const vm::Instr& in = chunk.code[pc];
      if (in.op != Op::kDeclare) continue;
      const vm::DeclMeta& m =
          chunk.decls[static_cast<std::size_t>(in.a)];
      // The chunk compiler gives every lexical decl a fresh slot, so this
      // map is one-to-one within a frame.
      fi.decl_of.emplace(m.slot, in.a);
    }
  }
  return frames;
}

}  // namespace

SpecPlan analyze_chunk(const vm::Chunk& chunk) {
  SpecPlan plan;
  std::vector<bool> jump_target(chunk.code.size(), false);
  for (const vm::Instr& in : chunk.code) {
    if (in.op == Op::kJump || in.op == Op::kJumpIfFalse) {
      auto t = static_cast<std::size_t>(in.a);
      if (t < jump_target.size()) jump_target[t] = true;
    }
  }
  for (const vm::FuncMeta& f : chunk.funcs) {
    if (f.entry < jump_target.size()) jump_target[f.entry] = true;
  }

  for (const FrameInfo& frame : frame_infos(chunk)) {
    std::size_t pc = frame.begin;
    while (pc < frame.end) {
      RegionSim sim(chunk, frame, jump_target, pc);
      std::optional<RegionPlan> region = sim.run();
      if (region) {
        std::size_t hi = region->hi;
        plan.bank_slots = std::max(plan.bank_slots, region->bank_slots);
        plan.regions.push_back(std::move(*region));
        pc = hi;
      } else {
        // Nothing (or too little) specializes here; skip past whatever
        // the failed attempt covered so the scan stays linear.
        pc = std::max(pc + 1, sim.hi_);
      }
    }
  }
  return plan;
}

std::string describe_plan(const vm::Chunk& chunk, const SpecPlan& plan) {
  std::ostringstream os;
  os << "jit-spec plan: " << plan.regions.size() << " region(s), bank "
     << plan.bank_slots << " quads\n";
  for (const RegionPlan& r : plan.regions) {
    os << "region [" << r.lo << ", " << r.hi << ") depth<=" << r.max_depth
       << "\n";
    for (const SpecGuard& g : r.guards) {
      static const char* const kGuardNames[] = {
          "scalar-numbr",   "scalar-numbar", "scalar-troof",
          "scalar-shape",   "unbound",       "array-numbr",
          "array-numbar",   "sym-array-numbr", "sym-array-numbar"};
      os << "  guard slot " << g.slot << " "
         << kGuardNames[static_cast<int>(g.kind)];
      if (g.bank >= 0) os << " -> bank[" << g.bank << "]";
      os << "\n";
    }
    for (const SpecLocal& l : r.locals) {
      os << "  local ";
      if (l.slot == SpecLocal::kItSlot) {
        os << "IT";
      } else {
        os << "slot " << l.slot;
      }
      if (l.reg == 15) {
        os << " -> r15";
      } else if (l.reg == 5) {
        os << " -> rbp";
      } else {
        os << " -> bank[" << l.bank << "]";
      }
      os << " uses=" << l.uses << (l.int_only ? "" : " numbar") << "\n";
    }
    for (std::size_t pc = r.lo; pc < r.hi; ++pc) {
      const SpecAct& a = r.acts[pc - r.lo];
      static const char* const kActNames[] = {
          "const",      "load-local",  "store-local", "declare",
          "declare-0",  "unbind",      "bin",         "not",
          "squar",      "int->numbar", "cast-nop",    "pop",
          "me",         "mah-frenz",   "arr-load",    "arr-store",
          "jmp",        "branch"};
      os << "  pc " << pc << " " << vm::op_name(chunk.code[pc].op) << " => "
         << kActNames[static_cast<int>(a.kind)];
      if (a.kind == SpecAct::Kind::kBin) {
        os << " "
           << ast::bin_op_name(
                  static_cast<ast::BinOp>(a.aux & kSpecBinOpMask))
           << " " << type_name(a.in);
        if ((a.aux & kSpecBinPromoteLhs) != 0) os << " (promote lhs)";
        if ((a.aux & kSpecBinPromoteRhs) != 0) os << " (promote rhs)";
      }
      if (const SpecExit* e = r.exit_at(pc)) {
        os << " [exit -> pc " << e->target << ", materialize "
           << e->vstack.size() << ", writeback " << e->writebacks.size()
           << "]";
      }
      os << "\n";
    }
    if (const SpecExit* e = r.exit_at(r.hi)) {
      os << "  fallthrough exit -> pc " << e->target << ", materialize "
         << e->vstack.size() << ", writeback " << e->writebacks.size()
         << "\n";
    }
    os << "  segments:";
    for (const SpecSegment& s : r.segments) {
      os << " [" << s.first_pc << "+" << s.steps << "]";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lol::codegen

#include "codegen/jit_emitter.hpp"

#include <cstring>

namespace lol::codegen {

namespace {

using vm::Op;

/// Append-only byte buffer with little-endian immediates and rel32
/// back-patching.
struct CodeBuf {
  std::vector<std::uint8_t> b;

  void u8(std::uint8_t x) { b.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  [[nodiscard]] std::size_t size() const { return b.size(); }
  void patch32(std::size_t off, std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b[off + i] = (x >> (8 * i)) & 0xFF;
  }
};

/// A rel32 whose target is only known after layout: the byte offset of a
/// bytecode block, the epilogue, or a function-call stub.
struct Fixup {
  enum class Kind { kBlock, kEpilogue, kStub };
  std::size_t at;  // offset of the rel32 immediate
  Kind kind;
  std::size_t target = 0;  // pc (kBlock) or function index (kStub)
};

/// Abstract operand type for the inline-arithmetic analysis: what the
/// emitter can predict about a stack slot at emit time. Predictions are
/// only heuristics — the typed prep re-checks the real operand types at
/// run time and falls back to the generic helper on mismatch — so the
/// analysis can never make the program wrong, only a fast path cold.
enum class Tag : std::uint8_t { kOther, kInt, kDbl };

class Emitter {
 public:
  explicit Emitter(const vm::Chunk& chunk) : chunk_(chunk) {}

  bool emit(std::vector<std::uint8_t>* out, std::string* error) {
    const JitHelperFn* table = jit_helper_table();
    build_type_facts();

    // Prologue: save callee-saved regs, align rsp to 16 (entry has
    // rsp % 16 == 8 from the caller's call), park Vm* in rbx and the
    // aligned rsp in r12 for the unwind path.
    buf_.u8(0x53);                            // push rbx
    buf_.u8(0x41); buf_.u8(0x54);             // push r12
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xFB);                 // mov rbx,rdi
    buf_.u8(0x49); buf_.u8(0x89); buf_.u8(0xE4);                 // mov r12,rsp

    block_off_.resize(chunk_.code.size());
    for (std::size_t pc = 0; pc < chunk_.code.size(); ++pc) {
      block_off_[pc] = buf_.size();
      // Control flow can land here from elsewhere with an unknown
      // stack shape: forget everything the straight line proved.
      if (pc < jump_target_.size() && jump_target_[pc]) astack_.clear();
      const vm::Instr& in = chunk_.code[pc];
      auto helper = table[static_cast<std::size_t>(in.op)];
      switch (in.op) {
        case Op::kJump:
          // Helper charges the step; then a real machine jump.
          call_helper(helper, in);
          jmp_to_block(static_cast<std::size_t>(in.a));
          astack_.clear();
          break;
        case Op::kJumpIfFalse:
          // Helper pops the condition and returns 1 when the branch is
          // taken (status already sign-checked by call_helper).
          call_helper(helper, in);
          buf_.u8(0x0F); buf_.u8(0x85);  // jnz rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kBlock,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kCall:
          // Helper builds the callee frame (args popped, depth checked);
          // then a machine call into the function's stub keeps LOLCODE
          // recursion on the machine stack.
          call_helper(helper, in);
          buf_.u8(0xE8);  // call rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kStub,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kReturn:
          // Helper pops the frame and pushes the return value; undo the
          // stub's alignment adjustment and return to the machine caller.
          call_helper(helper, in);
          buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);
          buf_.u8(0xC3);  // add rsp,8; ret
          astack_.clear();
          break;
        case Op::kHalt:
          call_helper(helper, in);
          buf_.u8(0xE9);  // jmp rel32 -> epilogue
          fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kBinary: {
          // Typed inline fast path where the analysis predicts both
          // operands: skip the helper call and the full Value/variant
          // machinery for the hot arithmetic the paper's kernels are
          // made of. Misprediction is handled at run time by the prep's
          // type re-check, which diverts to the generic helper.
          Tag cls = binary_fast_class(in);
          if (cls == Tag::kInt || cls == Tag::kDbl) {
            emit_binfast(helper, in, cls);
          } else {
            call_helper(helper, in);
          }
          if (astack_.size() >= 2) {
            astack_.pop_back();
            astack_.pop_back();
            astack_.push_back(cls);
          } else {
            astack_.clear();
          }
          break;
        }
        default:
          // Straight-line op: helper does step + semantics, fall through.
          call_helper(helper, in);
          track(in);
          break;
      }
    }

    // Epilogue (normal exit and the helper-threw unwind path): restore
    // the prologue rsp — discarding any nested, destructor-free JIT
    // frames — and the callee-saved registers.
    epilogue_off_ = buf_.size();
    buf_.u8(0x4C); buf_.u8(0x89); buf_.u8(0xE4);                 // mov rsp,r12
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);  // add rsp,8
    buf_.u8(0x41); buf_.u8(0x5C);                                // pop r12
    buf_.u8(0x5B);                                               // pop rbx
    buf_.u8(0xC3);                                               // ret

    // Per-function call stubs. Separate from the body so backward jumps
    // to a function's entry pc (loops starting at entry) don't re-run the
    // stack adjustment.
    stub_off_.resize(chunk_.funcs.size());
    for (std::size_t f = 0; f < chunk_.funcs.size(); ++f) {
      stub_off_[f] = buf_.size();
      buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
      jmp_to_block(static_cast<std::size_t>(chunk_.funcs[f].entry));
    }

    for (const Fixup& fx : fixups_) {
      std::size_t target = 0;
      switch (fx.kind) {
        case Fixup::Kind::kBlock:
          if (fx.target >= block_off_.size()) {
            if (error != nullptr) *error = "JIT: jump target out of range";
            return false;
          }
          target = block_off_[fx.target];
          break;
        case Fixup::Kind::kEpilogue:
          target = epilogue_off_;
          break;
        case Fixup::Kind::kStub:
          target = stub_off_[fx.target];
          break;
      }
      // rel32 is relative to the end of the 4-byte immediate.
      std::int64_t rel = static_cast<std::int64_t>(target) -
                         static_cast<std::int64_t>(fx.at + 4);
      buf_.patch32(fx.at, static_cast<std::uint32_t>(rel));
    }

    *out = std::move(buf_.b);
    return true;
  }

 private:
  /// Collects the static facts the operand-type analysis predicts from:
  /// which pcs control flow can jump to (the abstract stack dies there)
  /// and which frame slots hold typed scalars (declared NUMBR/NUMBAR,
  /// SRSLY or symmetric). Main and function frames share slot numbers;
  /// a slot declared with different types anywhere degrades to kOther —
  /// cheap, and still only a prediction.
  void build_type_facts() {
    jump_target_.assign(chunk_.code.size(), false);
    for (const vm::Instr& in : chunk_.code) {
      if (in.op == Op::kJump || in.op == Op::kJumpIfFalse) {
        auto t = static_cast<std::size_t>(in.a);
        if (t < jump_target_.size()) jump_target_[t] = true;
      }
    }
    for (const vm::FuncMeta& f : chunk_.funcs) {
      if (f.entry < jump_target_.size()) jump_target_[f.entry] = true;
    }

    for (const vm::DeclMeta& d : chunk_.decls) {
      if (d.slot < 0) continue;
      Tag t = Tag::kOther;
      if (!d.is_array) {
        std::optional<ast::TypeKind> ty =
            d.symmetric ? std::optional<ast::TypeKind>(d.elem)
                        : d.static_type;
        if (ty == ast::TypeKind::kNumbr) {
          t = Tag::kInt;
        } else if (ty == ast::TypeKind::kNumbar) {
          t = Tag::kDbl;
        }
      }
      auto slot = static_cast<std::size_t>(d.slot);
      if (slot >= slot_tag_.size()) {
        slot_tag_.resize(slot + 1, Tag::kOther);
        slot_seen_.resize(slot + 1, false);
      }
      if (!slot_seen_[slot]) {
        slot_seen_[slot] = true;
        slot_tag_[slot] = t;
      } else if (slot_tag_[slot] != t) {
        slot_tag_[slot] = Tag::kOther;
      }
    }
  }

  /// Abstract-stack transfer for the straight-line ops the analysis
  /// models. Anything else has a stack effect we don't track (kDeclare
  /// pops per decl flags, kNary pops a count, ...): drop to unknown.
  void track(const vm::Instr& in) {
    switch (in.op) {
      case Op::kConst: {
        const rt::Value& v = chunk_.consts[static_cast<std::size_t>(in.a)];
        astack_.push_back(v.is_numbr()    ? Tag::kInt
                          : v.is_numbar() ? Tag::kDbl
                                          : Tag::kOther);
        break;
      }
      case Op::kLoadVar: {
        Tag t = Tag::kOther;
        if (in.b == 0) {
          auto slot = static_cast<std::size_t>(in.a);
          if (slot < slot_tag_.size() && slot_seen_[slot]) {
            t = slot_tag_[slot];
          }
        }
        astack_.push_back(t);
        break;
      }
      case Op::kMe:
      case Op::kMahFrenz:
      case Op::kWhatevr:
        astack_.push_back(Tag::kInt);
        break;
      case Op::kWhatevar:
        astack_.push_back(Tag::kDbl);
        break;
      case Op::kLoadIt:
      case Op::kGimmeh:
        astack_.push_back(Tag::kOther);
        break;
      case Op::kPop:
      case Op::kStoreIt:
        if (!astack_.empty()) astack_.pop_back();
        break;
      default:
        astack_.clear();
        break;
    }
  }

  /// Whether this kBinary gets the inline path, and which one: both
  /// operands predicted NUMBR and the op is total on NUMBRs (no
  /// division/modulo — those throw on zero and stay generic), or both
  /// predicted NUMBAR for the closed float ops.
  [[nodiscard]] Tag binary_fast_class(const vm::Instr& in) const {
    if (astack_.size() < 2) return Tag::kOther;
    Tag rhs = astack_[astack_.size() - 1];
    Tag lhs = astack_[astack_.size() - 2];
    if (lhs != rhs) return Tag::kOther;
    auto op = static_cast<ast::BinOp>(in.a);
    if (lhs == Tag::kInt) {
      switch (op) {
        case ast::BinOp::kSum:
        case ast::BinOp::kDiff:
        case ast::BinOp::kProdukt:
        case ast::BinOp::kBiggr:
        case ast::BinOp::kSmallr:
          return Tag::kInt;
        default:
          return Tag::kOther;
      }
    }
    if (lhs == Tag::kDbl) {
      switch (op) {
        case ast::BinOp::kSum:
        case ast::BinOp::kDiff:
        case ast::BinOp::kProdukt:
          return Tag::kDbl;
        default:
          return Tag::kOther;
      }
    }
    return Tag::kOther;
  }

  /// Inline arithmetic block:
  ///
  ///   mov  rdi, rbx
  ///   movabs rax, <typed prep>
  ///   call rax                ; BinFastI in rax:rdx / BinFastD rax+xmm0
  ///   cmp  rax, 1
  ///   jb   fallback           ; lhs == 0: operands not both typed
  ///   cmp  rax, -1
  ///   je   epilogue           ; prep threw (step budget, abort)
  ///   <op on [rax] and rdx/xmm0>
  ///   jmp  done
  /// fallback:
  ///   <generic kBinary helper sequence>   ; charges its own step
  /// done:
  ///
  /// The prep already charged the step and popped the right operand, so
  /// the in-place update IS the whole op — result lands where kBinary
  /// would have pushed it.
  void emit_binfast(JitHelperFn generic, const vm::Instr& in, Tag cls) {
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0x48); buf_.u8(0xB8);                 // movabs rax, prep
    buf_.u64(cls == Tag::kInt ? jit_binfast_numbr_addr()
                              : jit_binfast_numbar_addr());
    buf_.u8(0xFF); buf_.u8(0xD0);                 // call rax
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xF8); buf_.u8(0x01);  // cmp rax,1
    buf_.u8(0x72);                                // jb rel8 -> fallback
    std::size_t jb_at = buf_.size();
    buf_.u8(0);
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xF8); buf_.u8(0xFF);  // cmp rax,-1
    buf_.u8(0x0F); buf_.u8(0x84);                 // je rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);

    auto op = static_cast<ast::BinOp>(in.a);
    if (cls == Tag::kInt) {
      switch (op) {
        case ast::BinOp::kSum:
          buf_.u8(0x48); buf_.u8(0x01); buf_.u8(0x10);  // add [rax],rdx
          break;
        case ast::BinOp::kDiff:
          buf_.u8(0x48); buf_.u8(0x29); buf_.u8(0x10);  // sub [rax],rdx
          break;
        case ast::BinOp::kProdukt:
          buf_.u8(0x48); buf_.u8(0x8B); buf_.u8(0x08);  // mov rcx,[rax]
          buf_.u8(0x48); buf_.u8(0x0F); buf_.u8(0xAF); buf_.u8(0xCA);
          buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0x08);  // imul; mov [rax],rcx
          break;
        case ast::BinOp::kBiggr:
        case ast::BinOp::kSmallr:
          buf_.u8(0x48); buf_.u8(0x8B); buf_.u8(0x08);  // mov rcx,[rax]
          buf_.u8(0x48); buf_.u8(0x39); buf_.u8(0xD1);  // cmp rcx,rdx
          buf_.u8(0x48); buf_.u8(0x0F);                 // cmovl/cmovg rcx,rdx
          buf_.u8(op == ast::BinOp::kBiggr ? 0x4C : 0x4F);
          buf_.u8(0xCA);
          buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0x08);  // mov [rax],rcx
          break;
        default:
          break;  // unreachable: binary_fast_class filtered
      }
    } else {
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x10); buf_.u8(0x08);
      buf_.u8(0xF2); buf_.u8(0x0F);  // movsd xmm1,[rax]; <op>sd xmm1,xmm0
      buf_.u8(op == ast::BinOp::kSum    ? 0x58
              : op == ast::BinOp::kDiff ? 0x5C
                                        : 0x59);
      buf_.u8(0xC8);
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x11); buf_.u8(0x08);
    }                                             // movsd [rax],xmm1

    buf_.u8(0xEB);                                // jmp rel8 -> done
    std::size_t done_at = buf_.size();
    buf_.u8(0);

    std::size_t fallback = buf_.size();
    buf_.b[jb_at] = static_cast<std::uint8_t>(fallback - (jb_at + 1));
    call_helper(generic, in);
    std::size_t done = buf_.size();
    buf_.b[done_at] = static_cast<std::uint8_t>(done - (done_at + 1));
  }

  /// The per-instruction core: call helper(vm, a, b, c) and bail to the
  /// epilogue when it reports a parked exception (negative status).
  void call_helper(JitHelperFn helper, const vm::Instr& in) {
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(in.a));  // mov esi,a
    buf_.u8(0xBA); buf_.u32(static_cast<std::uint32_t>(in.b));  // mov edx,b
    buf_.u8(0xB9); buf_.u32(static_cast<std::uint32_t>(in.c));  // mov ecx,c
    buf_.u8(0x48); buf_.u8(0xB8);  // movabs rax, imm64
    buf_.u64(reinterpret_cast<std::uint64_t>(helper));
    buf_.u8(0xFF); buf_.u8(0xD0);  // call rax
    buf_.u8(0x85); buf_.u8(0xC0);  // test eax,eax
    buf_.u8(0x0F); buf_.u8(0x88);  // js rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);
  }

  void jmp_to_block(std::size_t pc) {
    buf_.u8(0xE9);  // jmp rel32
    fixups_.push_back({buf_.size(), Fixup::Kind::kBlock, pc});
    buf_.u32(0);
  }

  const vm::Chunk& chunk_;
  CodeBuf buf_;
  std::vector<std::size_t> block_off_;
  std::vector<std::size_t> stub_off_;
  std::size_t epilogue_off_ = 0;
  std::vector<Fixup> fixups_;
  // Operand-type analysis state (build_type_facts / track).
  std::vector<bool> jump_target_;
  std::vector<Tag> slot_tag_;
  std::vector<bool> slot_seen_;
  std::vector<Tag> astack_;
};

void key_u32(std::string& k, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_u64(std::string& k, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_str(std::string& k, const std::string& s) {
  key_u64(k, s.size());
  k += s;
}

void key_value(std::string& k, const rt::Value& v) {
  if (v.is_noob()) {
    k.push_back(0);
  } else if (v.is_troof()) {
    k.push_back(1);
    k.push_back(v.troof_raw() ? 1 : 0);
  } else if (v.is_numbr()) {
    k.push_back(2);
    key_u64(k, static_cast<std::uint64_t>(v.numbr_raw()));
  } else if (v.is_numbar()) {
    k.push_back(3);
    std::uint64_t bits;
    double d = v.numbar_raw();
    std::memcpy(&bits, &d, sizeof bits);
    key_u64(k, bits);
  } else {
    k.push_back(4);
    key_str(k, v.yarn_raw());
  }
}

}  // namespace

bool emit_chunk_x86_64(const vm::Chunk& chunk, std::vector<std::uint8_t>* out,
                       std::string* error) {
  return Emitter(chunk).emit(out, error);
}

std::string chunk_cache_key(const vm::Chunk& chunk) {
  std::string k;
  k.reserve(chunk.code.size() * 13 + 64);
  key_u64(k, chunk.code.size());
  for (const vm::Instr& in : chunk.code) {
    k.push_back(static_cast<char>(in.op));
    key_u32(k, static_cast<std::uint32_t>(in.a));
    key_u32(k, static_cast<std::uint32_t>(in.b));
    key_u32(k, static_cast<std::uint32_t>(in.c));
  }
  key_u64(k, chunk.consts.size());
  for (const rt::Value& v : chunk.consts) key_value(k, v);
  key_u64(k, chunk.decls.size());
  for (const vm::DeclMeta& d : chunk.decls) {
    key_str(k, d.name);
    key_u32(k, static_cast<std::uint32_t>(d.slot));
    k.push_back(d.static_type ? static_cast<char>(1 + static_cast<int>(
                                    *d.static_type))
                              : 0);
    k.push_back(static_cast<char>((d.srsly << 0) | (d.is_array << 1) |
                                  (d.has_init << 2) | (d.has_size << 3) |
                                  (d.symmetric << 4)));
    key_u32(k, static_cast<std::uint32_t>(d.sym_slot));
    key_u32(k, static_cast<std::uint32_t>(d.lock_id));
    k.push_back(static_cast<char>(d.elem));
  }
  key_u64(k, chunk.funcs.size());
  for (const vm::FuncMeta& f : chunk.funcs) {
    key_str(k, f.name);
    key_u32(k, f.entry);
    key_u32(k, static_cast<std::uint32_t>(f.n_slots));
    key_u32(k, static_cast<std::uint32_t>(f.argc));
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.main_slots));
  key_u64(k, chunk.name_maps.size());
  for (const auto& map : chunk.name_maps) {
    key_u64(k, map.size());
    for (const auto& [name, slot] : map) {
      key_str(k, name);
      key_u32(k, static_cast<std::uint32_t>(slot));
    }
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.lock_count));
  return k;
}

}  // namespace lol::codegen

#include "codegen/jit_emitter.hpp"

#include <cstring>

namespace lol::codegen {

namespace {

using vm::Op;

/// Append-only byte buffer with little-endian immediates and rel32
/// back-patching.
struct CodeBuf {
  std::vector<std::uint8_t> b;

  void u8(std::uint8_t x) { b.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  [[nodiscard]] std::size_t size() const { return b.size(); }
  void patch32(std::size_t off, std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b[off + i] = (x >> (8 * i)) & 0xFF;
  }
};

/// A rel32 whose target is only known after layout: the byte offset of a
/// bytecode block, the epilogue, or a function-call stub.
struct Fixup {
  enum class Kind { kBlock, kEpilogue, kStub };
  std::size_t at;  // offset of the rel32 immediate
  Kind kind;
  std::size_t target = 0;  // pc (kBlock) or function index (kStub)
};

class Emitter {
 public:
  explicit Emitter(const vm::Chunk& chunk) : chunk_(chunk) {}

  bool emit(std::vector<std::uint8_t>* out, std::string* error) {
    const JitHelperFn* table = jit_helper_table();

    // Prologue: save callee-saved regs, align rsp to 16 (entry has
    // rsp % 16 == 8 from the caller's call), park Vm* in rbx and the
    // aligned rsp in r12 for the unwind path.
    buf_.u8(0x53);                            // push rbx
    buf_.u8(0x41); buf_.u8(0x54);             // push r12
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xFB);                 // mov rbx,rdi
    buf_.u8(0x49); buf_.u8(0x89); buf_.u8(0xE4);                 // mov r12,rsp

    block_off_.resize(chunk_.code.size());
    for (std::size_t pc = 0; pc < chunk_.code.size(); ++pc) {
      block_off_[pc] = buf_.size();
      const vm::Instr& in = chunk_.code[pc];
      auto helper = table[static_cast<std::size_t>(in.op)];
      switch (in.op) {
        case Op::kJump:
          // Helper charges the step; then a real machine jump.
          call_helper(helper, in);
          jmp_to_block(static_cast<std::size_t>(in.a));
          break;
        case Op::kJumpIfFalse:
          // Helper pops the condition and returns 1 when the branch is
          // taken (status already sign-checked by call_helper).
          call_helper(helper, in);
          buf_.u8(0x0F); buf_.u8(0x85);  // jnz rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kBlock,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          break;
        case Op::kCall:
          // Helper builds the callee frame (args popped, depth checked);
          // then a machine call into the function's stub keeps LOLCODE
          // recursion on the machine stack.
          call_helper(helper, in);
          buf_.u8(0xE8);  // call rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kStub,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          break;
        case Op::kReturn:
          // Helper pops the frame and pushes the return value; undo the
          // stub's alignment adjustment and return to the machine caller.
          call_helper(helper, in);
          buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);
          buf_.u8(0xC3);  // add rsp,8; ret
          break;
        case Op::kHalt:
          call_helper(helper, in);
          buf_.u8(0xE9);  // jmp rel32 -> epilogue
          fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
          buf_.u32(0);
          break;
        default:
          // Straight-line op: helper does step + semantics, fall through.
          call_helper(helper, in);
          break;
      }
    }

    // Epilogue (normal exit and the helper-threw unwind path): restore
    // the prologue rsp — discarding any nested, destructor-free JIT
    // frames — and the callee-saved registers.
    epilogue_off_ = buf_.size();
    buf_.u8(0x4C); buf_.u8(0x89); buf_.u8(0xE4);                 // mov rsp,r12
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);  // add rsp,8
    buf_.u8(0x41); buf_.u8(0x5C);                                // pop r12
    buf_.u8(0x5B);                                               // pop rbx
    buf_.u8(0xC3);                                               // ret

    // Per-function call stubs. Separate from the body so backward jumps
    // to a function's entry pc (loops starting at entry) don't re-run the
    // stack adjustment.
    stub_off_.resize(chunk_.funcs.size());
    for (std::size_t f = 0; f < chunk_.funcs.size(); ++f) {
      stub_off_[f] = buf_.size();
      buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
      jmp_to_block(static_cast<std::size_t>(chunk_.funcs[f].entry));
    }

    for (const Fixup& fx : fixups_) {
      std::size_t target = 0;
      switch (fx.kind) {
        case Fixup::Kind::kBlock:
          if (fx.target >= block_off_.size()) {
            if (error != nullptr) *error = "JIT: jump target out of range";
            return false;
          }
          target = block_off_[fx.target];
          break;
        case Fixup::Kind::kEpilogue:
          target = epilogue_off_;
          break;
        case Fixup::Kind::kStub:
          target = stub_off_[fx.target];
          break;
      }
      // rel32 is relative to the end of the 4-byte immediate.
      std::int64_t rel = static_cast<std::int64_t>(target) -
                         static_cast<std::int64_t>(fx.at + 4);
      buf_.patch32(fx.at, static_cast<std::uint32_t>(rel));
    }

    *out = std::move(buf_.b);
    return true;
  }

 private:
  /// The per-instruction core: call helper(vm, a, b, c) and bail to the
  /// epilogue when it reports a parked exception (negative status).
  void call_helper(JitHelperFn helper, const vm::Instr& in) {
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(in.a));  // mov esi,a
    buf_.u8(0xBA); buf_.u32(static_cast<std::uint32_t>(in.b));  // mov edx,b
    buf_.u8(0xB9); buf_.u32(static_cast<std::uint32_t>(in.c));  // mov ecx,c
    buf_.u8(0x48); buf_.u8(0xB8);  // movabs rax, imm64
    buf_.u64(reinterpret_cast<std::uint64_t>(helper));
    buf_.u8(0xFF); buf_.u8(0xD0);  // call rax
    buf_.u8(0x85); buf_.u8(0xC0);  // test eax,eax
    buf_.u8(0x0F); buf_.u8(0x88);  // js rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);
  }

  void jmp_to_block(std::size_t pc) {
    buf_.u8(0xE9);  // jmp rel32
    fixups_.push_back({buf_.size(), Fixup::Kind::kBlock, pc});
    buf_.u32(0);
  }

  const vm::Chunk& chunk_;
  CodeBuf buf_;
  std::vector<std::size_t> block_off_;
  std::vector<std::size_t> stub_off_;
  std::size_t epilogue_off_ = 0;
  std::vector<Fixup> fixups_;
};

void key_u32(std::string& k, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_u64(std::string& k, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_str(std::string& k, const std::string& s) {
  key_u64(k, s.size());
  k += s;
}

void key_value(std::string& k, const rt::Value& v) {
  if (v.is_noob()) {
    k.push_back(0);
  } else if (v.is_troof()) {
    k.push_back(1);
    k.push_back(v.troof_raw() ? 1 : 0);
  } else if (v.is_numbr()) {
    k.push_back(2);
    key_u64(k, static_cast<std::uint64_t>(v.numbr_raw()));
  } else if (v.is_numbar()) {
    k.push_back(3);
    std::uint64_t bits;
    double d = v.numbar_raw();
    std::memcpy(&bits, &d, sizeof bits);
    key_u64(k, bits);
  } else {
    k.push_back(4);
    key_str(k, v.yarn_raw());
  }
}

}  // namespace

bool emit_chunk_x86_64(const vm::Chunk& chunk, std::vector<std::uint8_t>* out,
                       std::string* error) {
  return Emitter(chunk).emit(out, error);
}

std::string chunk_cache_key(const vm::Chunk& chunk) {
  std::string k;
  k.reserve(chunk.code.size() * 13 + 64);
  key_u64(k, chunk.code.size());
  for (const vm::Instr& in : chunk.code) {
    k.push_back(static_cast<char>(in.op));
    key_u32(k, static_cast<std::uint32_t>(in.a));
    key_u32(k, static_cast<std::uint32_t>(in.b));
    key_u32(k, static_cast<std::uint32_t>(in.c));
  }
  key_u64(k, chunk.consts.size());
  for (const rt::Value& v : chunk.consts) key_value(k, v);
  key_u64(k, chunk.decls.size());
  for (const vm::DeclMeta& d : chunk.decls) {
    key_str(k, d.name);
    key_u32(k, static_cast<std::uint32_t>(d.slot));
    k.push_back(d.static_type ? static_cast<char>(1 + static_cast<int>(
                                    *d.static_type))
                              : 0);
    k.push_back(static_cast<char>((d.srsly << 0) | (d.is_array << 1) |
                                  (d.has_init << 2) | (d.has_size << 3) |
                                  (d.symmetric << 4)));
    key_u32(k, static_cast<std::uint32_t>(d.sym_slot));
    key_u32(k, static_cast<std::uint32_t>(d.lock_id));
    k.push_back(static_cast<char>(d.elem));
  }
  key_u64(k, chunk.funcs.size());
  for (const vm::FuncMeta& f : chunk.funcs) {
    key_str(k, f.name);
    key_u32(k, f.entry);
    key_u32(k, static_cast<std::uint32_t>(f.n_slots));
    key_u32(k, static_cast<std::uint32_t>(f.argc));
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.main_slots));
  key_u64(k, chunk.name_maps.size());
  for (const auto& map : chunk.name_maps) {
    key_u64(k, map.size());
    for (const auto& [name, slot] : map) {
      key_str(k, name);
      key_u32(k, static_cast<std::uint32_t>(slot));
    }
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.lock_count));
  return k;
}

}  // namespace lol::codegen

#include "codegen/jit_emitter.hpp"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <map>

#include "codegen/jit_analysis.hpp"
#include "rt/exec_context.hpp"

namespace lol::codegen {

namespace {

using vm::Op;

// ExecContext counter offsets baked into the step-batch code. The struct
// is standard-layout (all public, no virtuals), so offsetof is defined.
constexpr std::int32_t kCtxStepsLeft =
    static_cast<std::int32_t>(offsetof(rt::ExecContext, steps_left));
constexpr std::int32_t kCtxAbortCountdown =
    static_cast<std::int32_t>(offsetof(rt::ExecContext, abort_countdown));
constexpr std::int32_t kCtxStepsDone =
    static_cast<std::int32_t>(offsetof(rt::ExecContext, steps_done));

/// Append-only byte buffer with little-endian immediates and rel32
/// back-patching.
struct CodeBuf {
  std::vector<std::uint8_t> b;

  void u8(std::uint8_t x) { b.push_back(x); }
  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) b.push_back((x >> (8 * i)) & 0xFF);
  }
  [[nodiscard]] std::size_t size() const { return b.size(); }
  void patch32(std::size_t off, std::uint32_t x) {
    for (int i = 0; i < 4; ++i) b[off + i] = (x >> (8 * i)) & 0xFF;
  }
};

/// A rel32 whose target is only known after layout: the byte offset of a
/// bytecode block, the epilogue, a function-call stub, a specialized
/// region's entry, or the generic translation past a region's redirect
/// jump (kBlockPlus5 — the deopt resume point).
struct Fixup {
  enum class Kind { kBlock, kEpilogue, kStub, kSpecEntry, kBlockPlus5 };
  std::size_t at;  // offset of the rel32 immediate
  Kind kind;
  std::size_t target = 0;  // pc (kBlock/kBlockPlus5), function index
                           // (kStub) or region index (kSpecEntry)
};

/// Abstract operand type for the inline-arithmetic analysis: what the
/// emitter can predict about a stack slot at emit time. Predictions are
/// only heuristics — the typed prep re-checks the real operand types at
/// run time and falls back to the generic helper on mismatch — so the
/// analysis can never make the program wrong, only a fast path cold.
enum class Tag : std::uint8_t { kOther, kInt, kDbl };

class Emitter {
 public:
  Emitter(const vm::Chunk& chunk, const JitEmitOptions& opts)
      : chunk_(chunk), opts_(opts) {}

  bool emit(std::vector<std::uint8_t>* out, std::string* error,
            JitEmitInfo* info) {
    const JitHelperFn* table = jit_helper_table();
    build_type_facts();
    if (opts_.specialize) {
      plan_ = analyze_chunk(chunk_);
      // Defensive: the analysis caps its bank well under the env
      // allocation, but never emit displacements past it.
      std::erase_if(plan_.regions, [](const RegionPlan& r) {
        return r.bank_slots > static_cast<std::int32_t>(kJitSpecMaxBank);
      });
      for (std::size_t ri = 0; ri < plan_.regions.size(); ++ri) {
        region_at_[plan_.regions[ri].lo] = ri;
      }
      spec_entry_off_.assign(plan_.regions.size(), 0);
    }

    // Prologue: save callee-saved regs, align rsp to 16 (entry has
    // rsp % 16 == 8 from the caller's call; six pushes keep it at 8),
    // park Vm* in rbx, the JitSpecEnv* in r13 and the aligned rsp in
    // r12 for the unwind path. Specialized fuel (r14) starts at zero so
    // the first segment check re-derives a budget.
    buf_.u8(0x53);                            // push rbx
    buf_.u8(0x41); buf_.u8(0x54);             // push r12
    buf_.u8(0x41); buf_.u8(0x55);             // push r13
    buf_.u8(0x41); buf_.u8(0x56);             // push r14
    buf_.u8(0x41); buf_.u8(0x57);             // push r15
    buf_.u8(0x55);                            // push rbp
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xFB);                 // mov rbx,rdi
    buf_.u8(0x49); buf_.u8(0x89); buf_.u8(0xF5);                 // mov r13,rsi
    buf_.u8(0x49); buf_.u8(0x89); buf_.u8(0xE4);                 // mov r12,rsp
    buf_.u8(0x45); buf_.u8(0x31); buf_.u8(0xF6);                 // xor r14d,r14d

    block_off_.resize(chunk_.code.size());
    for (std::size_t pc = 0; pc < chunk_.code.size(); ++pc) {
      block_off_[pc] = buf_.size();
      // A specialized region starts here: the generic block leads with
      // a 5-byte jump into the region's guarded entry, so every path
      // that lands on this pc — fallthrough, loop back-edge, exit-stub
      // resume — re-attempts specialization. Deopt resumes at +5.
      if (auto it = region_at_.find(pc); it != region_at_.end()) {
        buf_.u8(0xE9);  // jmp rel32 -> spec entry
        fixups_.push_back({buf_.size(), Fixup::Kind::kSpecEntry,
                           it->second});
        buf_.u32(0);
      }
      // Control flow can land here from elsewhere with an unknown
      // stack shape: forget everything the straight line proved.
      if (pc < jump_target_.size() && jump_target_[pc]) astack_.clear();
      const vm::Instr& in = chunk_.code[pc];
      auto helper = table[static_cast<std::size_t>(in.op)];
      switch (in.op) {
        case Op::kJump:
          // Helper charges the step; then a real machine jump.
          call_helper(helper, in);
          jmp_to_block(static_cast<std::size_t>(in.a));
          astack_.clear();
          break;
        case Op::kJumpIfFalse:
          // Helper pops the condition and returns 1 when the branch is
          // taken (status already sign-checked by call_helper).
          call_helper(helper, in);
          buf_.u8(0x0F); buf_.u8(0x85);  // jnz rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kBlock,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kCall:
          // Helper builds the callee frame (args popped, depth checked);
          // then a machine call into the function's stub keeps LOLCODE
          // recursion on the machine stack.
          call_helper(helper, in);
          buf_.u8(0xE8);  // call rel32
          fixups_.push_back({buf_.size(), Fixup::Kind::kStub,
                             static_cast<std::size_t>(in.a)});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kReturn:
          // Helper pops the frame and pushes the return value; undo the
          // stub's alignment adjustment and return to the machine caller.
          call_helper(helper, in);
          buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);
          buf_.u8(0xC3);  // add rsp,8; ret
          astack_.clear();
          break;
        case Op::kHalt:
          call_helper(helper, in);
          buf_.u8(0xE9);  // jmp rel32 -> epilogue
          fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
          buf_.u32(0);
          astack_.clear();
          break;
        case Op::kBinary: {
          // Typed inline fast path where the analysis predicts both
          // operands: skip the helper call and the full Value/variant
          // machinery for the hot arithmetic the paper's kernels are
          // made of. Misprediction is handled at run time by the prep's
          // type re-check, which diverts to the generic helper.
          Tag cls = binary_fast_class(in);
          if (cls == Tag::kInt || cls == Tag::kDbl) {
            emit_binfast(helper, in, cls);
          } else {
            call_helper(helper, in);
          }
          if (astack_.size() >= 2) {
            astack_.pop_back();
            astack_.pop_back();
            astack_.push_back(cls);
          } else {
            astack_.clear();
          }
          break;
        }
        default:
          // Straight-line op: helper does step + semantics, fall through.
          call_helper(helper, in);
          track(in);
          break;
      }
    }

    // Epilogue (normal exit and the helper-threw unwind path): restore
    // the prologue rsp — discarding any nested, destructor-free JIT
    // frames — and the callee-saved registers.
    epilogue_off_ = buf_.size();
    buf_.u8(0x4C); buf_.u8(0x89); buf_.u8(0xE4);                 // mov rsp,r12
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x08);  // add rsp,8
    buf_.u8(0x5D);                                               // pop rbp
    buf_.u8(0x41); buf_.u8(0x5F);                                // pop r15
    buf_.u8(0x41); buf_.u8(0x5E);                                // pop r14
    buf_.u8(0x41); buf_.u8(0x5D);                                // pop r13
    buf_.u8(0x41); buf_.u8(0x5C);                                // pop r12
    buf_.u8(0x5B);                                               // pop rbx
    buf_.u8(0xC3);                                               // ret

    // Per-function call stubs. Separate from the body so backward jumps
    // to a function's entry pc (loops starting at entry) don't re-run the
    // stack adjustment.
    stub_off_.resize(chunk_.funcs.size());
    for (std::size_t f = 0; f < chunk_.funcs.size(); ++f) {
      stub_off_[f] = buf_.size();
      buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x08);  // sub rsp,8
      jmp_to_block(static_cast<std::size_t>(chunk_.funcs[f].entry));
    }

    // Specialized tier: the shared slow-path thunk, then every region's
    // entry + body + exit stubs.
    region_code_.assign(plan_.regions.size(), {0, 0});
    if (!plan_.regions.empty()) {
      emit_thunk();
      for (std::size_t ri = 0; ri < plan_.regions.size(); ++ri) {
        region_code_[ri].first = buf_.size();
        emit_region(plan_.regions[ri], ri);
        region_code_[ri].second = buf_.size();
      }
    }

    for (const Fixup& fx : fixups_) {
      std::size_t target = 0;
      switch (fx.kind) {
        case Fixup::Kind::kBlock:
        case Fixup::Kind::kBlockPlus5:
          if (fx.target >= block_off_.size()) {
            if (error != nullptr) *error = "JIT: jump target out of range";
            return false;
          }
          target = block_off_[fx.target];
          if (fx.kind == Fixup::Kind::kBlockPlus5) target += 5;
          break;
        case Fixup::Kind::kEpilogue:
          target = epilogue_off_;
          break;
        case Fixup::Kind::kStub:
          target = stub_off_[fx.target];
          break;
        case Fixup::Kind::kSpecEntry:
          target = spec_entry_off_[fx.target];
          break;
      }
      // rel32 is relative to the end of the 4-byte immediate.
      std::int64_t rel = static_cast<std::int64_t>(target) -
                         static_cast<std::int64_t>(fx.at + 4);
      buf_.patch32(fx.at, static_cast<std::uint32_t>(rel));
    }

    if (info != nullptr) {
      info->bank_slots = plan_.bank_slots;
      info->regions = plan_.regions.size();
      for (const RegionPlan& r : plan_.regions) {
        info->spec_pcs += r.hi - r.lo;
      }
    }
    if (opts_.dump != nullptr) append_dump();

    *out = std::move(buf_.b);
    return true;
  }

 private:
  /// Collects the static facts the operand-type analysis predicts from:
  /// which pcs control flow can jump to (the abstract stack dies there)
  /// and which frame slots hold typed scalars (declared NUMBR/NUMBAR,
  /// SRSLY or symmetric). Main and function frames share slot numbers;
  /// a slot declared with different types anywhere degrades to kOther —
  /// cheap, and still only a prediction.
  void build_type_facts() {
    jump_target_.assign(chunk_.code.size(), false);
    for (const vm::Instr& in : chunk_.code) {
      if (in.op == Op::kJump || in.op == Op::kJumpIfFalse) {
        auto t = static_cast<std::size_t>(in.a);
        if (t < jump_target_.size()) jump_target_[t] = true;
      }
    }
    for (const vm::FuncMeta& f : chunk_.funcs) {
      if (f.entry < jump_target_.size()) jump_target_[f.entry] = true;
    }

    for (const vm::DeclMeta& d : chunk_.decls) {
      if (d.slot < 0) continue;
      Tag t = Tag::kOther;
      if (!d.is_array) {
        std::optional<ast::TypeKind> ty =
            d.symmetric ? std::optional<ast::TypeKind>(d.elem)
                        : d.static_type;
        if (ty == ast::TypeKind::kNumbr) {
          t = Tag::kInt;
        } else if (ty == ast::TypeKind::kNumbar) {
          t = Tag::kDbl;
        }
      }
      auto slot = static_cast<std::size_t>(d.slot);
      if (slot >= slot_tag_.size()) {
        slot_tag_.resize(slot + 1, Tag::kOther);
        slot_seen_.resize(slot + 1, false);
      }
      if (!slot_seen_[slot]) {
        slot_seen_[slot] = true;
        slot_tag_[slot] = t;
      } else if (slot_tag_[slot] != t) {
        slot_tag_[slot] = Tag::kOther;
      }
    }
  }

  /// Abstract-stack transfer for the straight-line ops the analysis
  /// models. Anything else has a stack effect we don't track (kDeclare
  /// pops per decl flags, kNary pops a count, ...): drop to unknown.
  void track(const vm::Instr& in) {
    switch (in.op) {
      case Op::kConst: {
        const rt::Value& v = chunk_.consts[static_cast<std::size_t>(in.a)];
        astack_.push_back(v.is_numbr()    ? Tag::kInt
                          : v.is_numbar() ? Tag::kDbl
                                          : Tag::kOther);
        break;
      }
      case Op::kLoadVar: {
        Tag t = Tag::kOther;
        if (in.b == 0) {
          auto slot = static_cast<std::size_t>(in.a);
          if (slot < slot_tag_.size() && slot_seen_[slot]) {
            t = slot_tag_[slot];
          }
        }
        astack_.push_back(t);
        break;
      }
      case Op::kMe:
      case Op::kMahFrenz:
      case Op::kWhatevr:
        astack_.push_back(Tag::kInt);
        break;
      case Op::kWhatevar:
        astack_.push_back(Tag::kDbl);
        break;
      case Op::kLoadIt:
      case Op::kGimmeh:
        astack_.push_back(Tag::kOther);
        break;
      case Op::kPop:
      case Op::kStoreIt:
        if (!astack_.empty()) astack_.pop_back();
        break;
      default:
        astack_.clear();
        break;
    }
  }

  /// Whether this kBinary gets the inline path, and which one: both
  /// operands predicted NUMBR and the op is total on NUMBRs (no
  /// division/modulo — those throw on zero and stay generic), or both
  /// predicted NUMBAR for the closed float ops.
  [[nodiscard]] Tag binary_fast_class(const vm::Instr& in) const {
    if (astack_.size() < 2) return Tag::kOther;
    Tag rhs = astack_[astack_.size() - 1];
    Tag lhs = astack_[astack_.size() - 2];
    if (lhs != rhs) return Tag::kOther;
    auto op = static_cast<ast::BinOp>(in.a);
    if (lhs == Tag::kInt) {
      switch (op) {
        case ast::BinOp::kSum:
        case ast::BinOp::kDiff:
        case ast::BinOp::kProdukt:
        case ast::BinOp::kBiggr:
        case ast::BinOp::kSmallr:
          return Tag::kInt;
        default:
          return Tag::kOther;
      }
    }
    if (lhs == Tag::kDbl) {
      switch (op) {
        case ast::BinOp::kSum:
        case ast::BinOp::kDiff:
        case ast::BinOp::kProdukt:
          return Tag::kDbl;
        default:
          return Tag::kOther;
      }
    }
    return Tag::kOther;
  }

  /// Inline arithmetic block:
  ///
  ///   mov  rdi, rbx
  ///   movabs rax, <typed prep>
  ///   call rax                ; BinFastI in rax:rdx / BinFastD rax+xmm0
  ///   cmp  rax, 1
  ///   jb   fallback           ; lhs == 0: operands not both typed
  ///   cmp  rax, -1
  ///   je   epilogue           ; prep threw (step budget, abort)
  ///   <op on [rax] and rdx/xmm0>
  ///   jmp  done
  /// fallback:
  ///   <generic kBinary helper sequence>   ; charges its own step
  /// done:
  ///
  /// The prep already charged the step and popped the right operand, so
  /// the in-place update IS the whole op — result lands where kBinary
  /// would have pushed it.
  void emit_binfast(JitHelperFn generic, const vm::Instr& in, Tag cls) {
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0x48); buf_.u8(0xB8);                 // movabs rax, prep
    buf_.u64(cls == Tag::kInt ? jit_binfast_numbr_addr()
                              : jit_binfast_numbar_addr());
    buf_.u8(0xFF); buf_.u8(0xD0);                 // call rax
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xF8); buf_.u8(0x01);  // cmp rax,1
    buf_.u8(0x72);                                // jb rel8 -> fallback
    std::size_t jb_at = buf_.size();
    buf_.u8(0);
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xF8); buf_.u8(0xFF);  // cmp rax,-1
    buf_.u8(0x0F); buf_.u8(0x84);                 // je rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);

    auto op = static_cast<ast::BinOp>(in.a);
    if (cls == Tag::kInt) {
      switch (op) {
        case ast::BinOp::kSum:
          buf_.u8(0x48); buf_.u8(0x01); buf_.u8(0x10);  // add [rax],rdx
          break;
        case ast::BinOp::kDiff:
          buf_.u8(0x48); buf_.u8(0x29); buf_.u8(0x10);  // sub [rax],rdx
          break;
        case ast::BinOp::kProdukt:
          buf_.u8(0x48); buf_.u8(0x8B); buf_.u8(0x08);  // mov rcx,[rax]
          buf_.u8(0x48); buf_.u8(0x0F); buf_.u8(0xAF); buf_.u8(0xCA);
          buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0x08);  // imul; mov [rax],rcx
          break;
        case ast::BinOp::kBiggr:
        case ast::BinOp::kSmallr:
          buf_.u8(0x48); buf_.u8(0x8B); buf_.u8(0x08);  // mov rcx,[rax]
          buf_.u8(0x48); buf_.u8(0x39); buf_.u8(0xD1);  // cmp rcx,rdx
          buf_.u8(0x48); buf_.u8(0x0F);                 // cmovl/cmovg rcx,rdx
          buf_.u8(op == ast::BinOp::kBiggr ? 0x4C : 0x4F);
          buf_.u8(0xCA);
          buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0x08);  // mov [rax],rcx
          break;
        default:
          break;  // unreachable: binary_fast_class filtered
      }
    } else {
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x10); buf_.u8(0x08);
      buf_.u8(0xF2); buf_.u8(0x0F);  // movsd xmm1,[rax]; <op>sd xmm1,xmm0
      buf_.u8(op == ast::BinOp::kSum    ? 0x58
              : op == ast::BinOp::kDiff ? 0x5C
                                        : 0x59);
      buf_.u8(0xC8);
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x11); buf_.u8(0x08);
    }                                             // movsd [rax],xmm1

    buf_.u8(0xEB);                                // jmp rel8 -> done
    std::size_t done_at = buf_.size();
    buf_.u8(0);

    std::size_t fallback = buf_.size();
    buf_.b[jb_at] = static_cast<std::uint8_t>(fallback - (jb_at + 1));
    call_helper(generic, in);
    std::size_t done = buf_.size();
    buf_.b[done_at] = static_cast<std::uint8_t>(done - (done_at + 1));
  }

  /// The per-instruction core: call helper(vm, a, b, c) and bail to the
  /// epilogue when it reports a parked exception (negative status).
  void call_helper(JitHelperFn helper, const vm::Instr& in) {
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(in.a));  // mov esi,a
    buf_.u8(0xBA); buf_.u32(static_cast<std::uint32_t>(in.b));  // mov edx,b
    buf_.u8(0xB9); buf_.u32(static_cast<std::uint32_t>(in.c));  // mov ecx,c
    buf_.u8(0x48); buf_.u8(0xB8);  // movabs rax, imm64
    buf_.u64(reinterpret_cast<std::uint64_t>(helper));
    buf_.u8(0xFF); buf_.u8(0xD0);  // call rax
    buf_.u8(0x85); buf_.u8(0xC0);  // test eax,eax
    buf_.u8(0x0F); buf_.u8(0x88);  // js rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);
  }

  void jmp_to_block(std::size_t pc) {
    buf_.u8(0xE9);  // jmp rel32
    fixups_.push_back({buf_.size(), Fixup::Kind::kBlock, pc});
    buf_.u32(0);
  }

  // ---- specialized-tier encoding primitives -----------------------------
  //
  // Register numbering is the x86 one: rax=0 rcx=1 rdx=2 rbx=3 rsp=4
  // rbp=5 rsi=6 rdi=7 r8..r15=8..15. Virtual-stack homes are r8+d /
  // xmm-d for relative depth d < kVstackRegDepth, bank quad d beyond.

  [[nodiscard]] static std::int32_t bank_disp(std::int32_t slot) {
    return static_cast<std::int32_t>(kJitEnvBankOffset) + 8 * slot;
  }

  /// ModRM (+disp) for [r13 + disp] with the given /reg field. r13's
  /// rm encoding (101) mandates an explicit displacement.
  void modrm_r13(int reg3, std::int32_t disp) {
    if (disp >= -128 && disp <= 127) {
      buf_.u8(static_cast<std::uint8_t>(0x40 | (reg3 << 3) | 5));
      buf_.u8(static_cast<std::uint8_t>(disp));
    } else {
      buf_.u8(static_cast<std::uint8_t>(0x80 | (reg3 << 3) | 5));
      buf_.u32(static_cast<std::uint32_t>(disp));
    }
  }

  void mov_r_m13(int reg, std::int32_t disp) {  // mov reg64, [r13+disp]
    buf_.u8(static_cast<std::uint8_t>(0x48 | (reg >= 8 ? 4 : 0) | 1));
    buf_.u8(0x8B);
    modrm_r13(reg & 7, disp);
  }

  void mov_m13_r(int reg, std::int32_t disp) {  // mov [r13+disp], reg64
    buf_.u8(static_cast<std::uint8_t>(0x48 | (reg >= 8 ? 4 : 0) | 1));
    buf_.u8(0x89);
    modrm_r13(reg & 7, disp);
  }

  void movsd_x_m13(int x, std::int32_t disp) {  // movsd xmm, [r13+disp]
    buf_.u8(0xF2); buf_.u8(0x41); buf_.u8(0x0F); buf_.u8(0x10);
    modrm_r13(x, disp);
  }

  void movsd_m13_x(int x, std::int32_t disp) {  // movsd [r13+disp], xmm
    buf_.u8(0xF2); buf_.u8(0x41); buf_.u8(0x0F); buf_.u8(0x11);
    modrm_r13(x, disp);
  }

  void mov_rr(int dst, int src) {  // mov dst64, src64
    buf_.u8(static_cast<std::uint8_t>(0x48 | (src >= 8 ? 4 : 0) |
                                      (dst >= 8 ? 1 : 0)));
    buf_.u8(0x89);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
  }

  void movsd_xx(int dst, int src) {  // movsd xmm_dst, xmm_src (both < 8)
    buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x10);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (dst << 3) | src));
  }

  /// Classic /r ALU op, reg=src rm=dst: 01 add, 29 sub, 21 and, 09 or,
  /// 31 xor, 39 cmp, 85 test.
  void alu_rr(std::uint8_t opc, int dst, int src) {
    buf_.u8(static_cast<std::uint8_t>(0x48 | (src >= 8 ? 4 : 0) |
                                      (dst >= 8 ? 1 : 0)));
    buf_.u8(opc);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
  }

  void test_rr(int reg) { alu_rr(0x85, reg, reg); }

  void imul_rr(int dst, int src) {  // imul dst64, src64 (reg=dst rm=src)
    buf_.u8(static_cast<std::uint8_t>(0x48 | (dst >= 8 ? 4 : 0) |
                                      (src >= 8 ? 1 : 0)));
    buf_.u8(0x0F); buf_.u8(0xAF);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
  }

  void cmov_rr(std::uint8_t cc, int dst, int src) {  // cmovcc dst, src
    buf_.u8(static_cast<std::uint8_t>(0x48 | (dst >= 8 ? 4 : 0) |
                                      (src >= 8 ? 1 : 0)));
    buf_.u8(0x0F); buf_.u8(cc);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
  }

  /// setcc reg8 then zero-extend to 64 bits. Only rax/rcx and r8-r11
  /// ever receive flags (never rbp/rsi/rdi, whose no-REX byte forms
  /// would alias ah/ch).
  void setcc_movzx(std::uint8_t cc, int reg) {
    if (reg >= 8) buf_.u8(0x41);
    buf_.u8(0x0F); buf_.u8(cc);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (reg & 7)));
    buf_.u8(static_cast<std::uint8_t>(0x48 | (reg >= 8 ? 5 : 0)));
    buf_.u8(0x0F); buf_.u8(0xB6);  // movzx reg64, reg8
    buf_.u8(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (reg & 7)));
  }

  void alu_imm8(std::uint8_t regfield, int reg, std::int8_t imm) {
    buf_.u8(static_cast<std::uint8_t>(0x48 | (reg >= 8 ? 1 : 0)));
    buf_.u8(0x83);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (regfield << 3) | (reg & 7)));
    buf_.u8(static_cast<std::uint8_t>(imm));
  }

  void movabs(int reg, std::uint64_t imm) {
    buf_.u8(static_cast<std::uint8_t>(0x48 | (reg >= 8 ? 1 : 0)));
    buf_.u8(static_cast<std::uint8_t>(0xB8 + (reg & 7)));
    buf_.u64(imm);
  }

  void sse_rr(std::uint8_t opc, int dst, int src) {  // F2 0F <opc> (xmm<8)
    buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(opc);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (dst << 3) | src));
  }

  void ucomisd(int a, int b) {  // sets CF/ZF from xmm_a ? xmm_b
    buf_.u8(0x66); buf_.u8(0x0F); buf_.u8(0x2E);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (a << 3) | b));
  }

  void cmpeqsd(int dst, int src) {  // all-ones/zero mask into dst
    buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0xC2);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (dst << 3) | src));
    buf_.u8(0x00);
  }

  void cvtsi2sd(int x, int r) {  // cvtsi2sd xmm, r64
    buf_.u8(0xF2);
    buf_.u8(static_cast<std::uint8_t>(0x48 | (r >= 8 ? 1 : 0)));
    buf_.u8(0x0F); buf_.u8(0x2A);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (x << 3) | (r & 7)));
  }

  void movq_x_r(int x, int r) {  // movq xmm, r64
    buf_.u8(0x66);
    buf_.u8(static_cast<std::uint8_t>(0x48 | (r >= 8 ? 1 : 0)));
    buf_.u8(0x0F); buf_.u8(0x6E);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (x << 3) | (r & 7)));
  }

  void movq_r_x(int r, int x) {  // movq r64, xmm
    buf_.u8(0x66);
    buf_.u8(static_cast<std::uint8_t>(0x48 | (r >= 8 ? 1 : 0)));
    buf_.u8(0x0F); buf_.u8(0x7E);
    buf_.u8(static_cast<std::uint8_t>(0xC0 | (x << 3) | (r & 7)));
  }

  /// add (regfield 0) / sub (regfield 5) an immediate to qword
  /// [rax + disp] — the inline step-counter updates.
  void rax_mem_imm(std::uint8_t regfield, std::int32_t disp,
                   std::int32_t k) {
    bool k8 = k >= -128 && k <= 127;
    buf_.u8(0x48);
    buf_.u8(k8 ? 0x83 : 0x81);
    if (disp >= -128 && disp <= 127) {
      buf_.u8(static_cast<std::uint8_t>(0x40 | (regfield << 3)));
      buf_.u8(static_cast<std::uint8_t>(disp));
    } else {
      buf_.u8(static_cast<std::uint8_t>(0x80 | (regfield << 3)));
      buf_.u32(static_cast<std::uint32_t>(disp));
    }
    if (k8) buf_.u8(static_cast<std::uint8_t>(k));
    else buf_.u32(static_cast<std::uint32_t>(k));
  }

  void r13_mem_imm(std::uint8_t regfield, std::int32_t disp,
                   std::int32_t k) {
    bool k8 = k >= -128 && k <= 127;
    buf_.u8(0x49);
    buf_.u8(k8 ? 0x83 : 0x81);
    modrm_r13(regfield, disp);
    if (k8) buf_.u8(static_cast<std::uint8_t>(k));
    else buf_.u32(static_cast<std::uint32_t>(k));
  }

  void spec_call(std::uint64_t addr) {
    movabs(0, addr);               // movabs rax, fn
    buf_.u8(0xFF); buf_.u8(0xD0);  // call rax
  }

  void js_epilogue() {
    buf_.u8(0x0F); buf_.u8(0x88);  // js rel32 -> epilogue
    fixups_.push_back({buf_.size(), Fixup::Kind::kEpilogue, 0});
    buf_.u32(0);
  }

  void patch_rel32(std::size_t at, std::size_t target) {
    buf_.patch32(at, static_cast<std::uint32_t>(
                         static_cast<std::int64_t>(target) -
                         static_cast<std::int64_t>(at + 4)));
  }

  /// Operand fetch: the GPR holding virtual-stack depth d, loading a
  /// bank-resident entry into `scratch` (rax/rcx) first.
  int gpr_operand(std::size_t d, int scratch) {
    if (d < kVstackRegDepth) return 8 + static_cast<int>(d);
    mov_r_m13(scratch, bank_disp(static_cast<std::int32_t>(d)));
    return scratch;
  }

  void gpr_store_back(std::size_t d, int reg) {
    if (d >= kVstackRegDepth) {
      mov_m13_r(reg, bank_disp(static_cast<std::int32_t>(d)));
    }
  }

  int xmm_operand(std::size_t d, int scratch) {
    if (d < kVstackRegDepth) return static_cast<int>(d);
    movsd_x_m13(scratch, bank_disp(static_cast<std::int32_t>(d)));
    return scratch;
  }

  void xmm_store_back(std::size_t d, int x) {
    if (d >= kVstackRegDepth) {
      movsd_m13_x(x, bank_disp(static_cast<std::int32_t>(d)));
    }
  }

  // ---- specialized-tier layout ------------------------------------------

  /// The shared slow-path thunk behind every segment check. Caller-saved
  /// virtual-stack registers are preserved around jit_spec_slow (the
  /// callee-saved local homes survive on their own); eax carries the
  /// segment's step count in, rax the fresh fuel out. Entered by a call
  /// at block level (rsp % 16 == 0): ret addr + 4 pushes leave rsp at 8,
  /// sub 40 re-aligns for the C call.
  void emit_thunk() {
    const JitSpecHelpers& h = jit_spec_helpers();
    thunk_off_ = buf_.size();
    buf_.u8(0x41); buf_.u8(0x50);  // push r8
    buf_.u8(0x41); buf_.u8(0x51);  // push r9
    buf_.u8(0x41); buf_.u8(0x52);  // push r10
    buf_.u8(0x41); buf_.u8(0x53);  // push r11
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xEC); buf_.u8(0x28);  // sub rsp,40
    for (int x = 0; x < 4; ++x) {  // movsd [rsp+8x], xmm_x
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x11);
      if (x == 0) {
        buf_.u8(0x04); buf_.u8(0x24);
      } else {
        buf_.u8(static_cast<std::uint8_t>(0x44 | (x << 3)));
        buf_.u8(0x24);
        buf_.u8(static_cast<std::uint8_t>(8 * x));
      }
    }
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0x4C); buf_.u8(0x89); buf_.u8(0xEE);  // mov rsi,r13
    buf_.u8(0x89); buf_.u8(0xC2);                 // mov edx,eax
    spec_call(h.slow);
    buf_.u8(0x48); buf_.u8(0x85); buf_.u8(0xC0);  // test rax,rax
    js_epilogue();                 // parked exception: bail (epilogue
                                   // discards this frame via r12)
    buf_.u8(0x49); buf_.u8(0x89); buf_.u8(0xC6);  // mov r14,rax
    for (int x = 0; x < 4; ++x) {  // movsd xmm_x, [rsp+8x]
      buf_.u8(0xF2); buf_.u8(0x0F); buf_.u8(0x10);
      if (x == 0) {
        buf_.u8(0x04); buf_.u8(0x24);
      } else {
        buf_.u8(static_cast<std::uint8_t>(0x44 | (x << 3)));
        buf_.u8(0x24);
        buf_.u8(static_cast<std::uint8_t>(8 * x));
      }
    }
    buf_.u8(0x48); buf_.u8(0x83); buf_.u8(0xC4); buf_.u8(0x28);  // add rsp,40
    buf_.u8(0x41); buf_.u8(0x5B);  // pop r11
    buf_.u8(0x41); buf_.u8(0x5A);  // pop r10
    buf_.u8(0x41); buf_.u8(0x59);  // pop r9
    buf_.u8(0x41); buf_.u8(0x58);  // pop r8
    buf_.u8(0xC3);                 // ret
  }

  /// One basic block's batched step charge: decrement the fuel by the
  /// block's op count; on underflow the slow stub re-derives the budget
  /// through ctx.count_step() (exact throw indices, abort polls, fiber
  /// preemption); otherwise bump the context counters inline. steps_left
  /// is adjusted unconditionally — the VM only reads it when max_steps
  /// is set, and jit_spec_slow caps fuel by it in that case, so the
  /// inline path can never drive it negative when it matters.
  void emit_seg_check(std::int32_t k) {
    bool k8 = k <= 127;
    buf_.u8(0x49);
    buf_.u8(k8 ? 0x83 : 0x81);
    buf_.u8(0xEE);  // sub r14, k
    if (k8) buf_.u8(static_cast<std::uint8_t>(k));
    else buf_.u32(static_cast<std::uint32_t>(k));
    buf_.u8(0x0F); buf_.u8(0x8C);  // jl rel32 -> slow stub
    std::size_t jl_at = buf_.size();
    buf_.u32(0);
    buf_.u8(0x49); buf_.u8(0x8B); buf_.u8(0x45); buf_.u8(0x00);  // mov rax,[r13]
    rax_mem_imm(0, kCtxStepsDone, k);
    rax_mem_imm(5, kCtxStepsLeft, k);
    rax_mem_imm(5, kCtxAbortCountdown, k);
    r13_mem_imm(0, 24, k);  // env->spec_ops += k
    seg_recs_.push_back({jl_at, buf_.size(), k});
  }

  /// The rel32 of an in-region jump: to another specialized pc, or to
  /// this op's exit stub when the analysis routed the edge out.
  void route_spec_jump(const RegionPlan& r, std::size_t pc,
                       std::size_t target) {
    std::size_t at = buf_.size();
    buf_.u32(0);
    if (const SpecExit* e = r.exit_at(pc)) {
      exit_fix_.push_back(
          {at, static_cast<std::size_t>(e - r.exits.data())});
    } else if (target >= r.hi || target < r.lo) {
      // The walk resolved this edge "internal" by adopting its state at
      // the target pc, but the region then ended exactly there — so the
      // edge's state is the fallthrough exit's snapshot (adopted or
      // snaps_equal-verified) and its stub materializes it exactly.
      const SpecExit* f = r.exit_at(r.hi);
      exit_fix_.push_back(
          {at, static_cast<std::size_t>(f - r.exits.data())});
    } else {
      reg_fix_.push_back({at, target});
    }
  }

  void emit_region(const RegionPlan& r, std::size_t ri) {
    const JitSpecHelpers& h = jit_spec_helpers();
    reg_fix_.clear();
    exit_fix_.clear();
    seg_recs_.clear();

    // Deopt trampoline: count it, resume at the generic translation of
    // lo (+5 skips the redirect back into this entry).
    std::size_t deopt_off = buf_.size();
    buf_.u8(0x49); buf_.u8(0xFF); buf_.u8(0x45); buf_.u8(0x20);  // inc [r13+32]
    buf_.u8(0xE9);
    fixups_.push_back({buf_.size(), Fixup::Kind::kBlockPlus5, r.lo});
    buf_.u32(0);

    // Entry: stale fuel from whatever ran since the last region is
    // discarded, then the guards prove every tracked slot's shape and
    // payload type (read-only: a failed guard deopts with zero state
    // to undo). Scalar guards also park the payload in the bank, so
    // passing them doubles as the first-touch load.
    spec_entry_off_[ri] = buf_.size();
    buf_.u8(0x45); buf_.u8(0x31); buf_.u8(0xF6);  // xor r14d,r14d
    for (const SpecGuard& g : r.guards) {
      buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
      buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(g.slot));
      buf_.u8(0xBA); buf_.u32(static_cast<std::uint32_t>(g.kind));
      // lea rcx, [r13 + bank] (the reserved quad when no payload loads)
      buf_.u8(0x49); buf_.u8(0x8D);
      modrm_r13(1, g.bank >= 0 ? bank_disp(g.bank) : 40);
      spec_call(h.guard);
      buf_.u8(0x85); buf_.u8(0xC0);  // test eax,eax
      buf_.u8(0x0F); buf_.u8(0x84);  // jz rel32 -> deopt
      std::size_t at = buf_.size();
      buf_.u32(0);
      patch_rel32(at, deopt_off);
    }
    for (const SpecLocal& l : r.locals) {
      if (l.reg >= 0) mov_r_m13(l.reg, bank_disp(l.bank));
    }

    // Body. Internal edges land on spec_off (before the pc's segment
    // check, so back-edges recharge their batch every iteration).
    std::vector<std::size_t> spec_off(r.hi - r.lo, 0);
    std::size_t seg_ix = 0;
    for (std::size_t pc = r.lo; pc < r.hi; ++pc) {
      spec_off[pc - r.lo] = buf_.size();
      if (seg_ix < r.segments.size() &&
          r.segments[seg_ix].first_pc == pc) {
        emit_seg_check(r.segments[seg_ix].steps);
        ++seg_ix;
      }
      emit_act(r, pc);
    }
    if (const SpecExit* e = r.exit_at(r.hi)) {
      buf_.u8(0xE9);  // fallthrough exit
      exit_fix_.push_back(
          {buf_.size(), static_cast<std::size_t>(e - r.exits.data())});
      buf_.u32(0);
    }

    // Exit stubs, then the per-segment slow stubs, then the in-region
    // patches now that every local label has an offset.
    std::vector<std::size_t> exit_off(r.exits.size(), 0);
    for (std::size_t ei = 0; ei < r.exits.size(); ++ei) {
      exit_off[ei] = buf_.size();
      emit_exit_stub(r, r.exits[ei]);
    }
    for (const SegRec& s : seg_recs_) {
      patch_rel32(s.jl_at, buf_.size());
      buf_.u8(0xB8); buf_.u32(static_cast<std::uint32_t>(s.steps));
      buf_.u8(0xE8);  // call thunk
      std::size_t at = buf_.size();
      buf_.u32(0);
      patch_rel32(at, thunk_off_);
      buf_.u8(0xE9);  // jmp back past the inline counter updates
      at = buf_.size();
      buf_.u32(0);
      patch_rel32(at, s.cont);
    }
    for (const RegFix& f : reg_fix_) {
      patch_rel32(f.at, spec_off[f.target_pc - r.lo]);
    }
    for (const ExitFix& f : exit_fix_) {
      patch_rel32(f.at, exit_off[f.exit_ix]);
    }
  }

  void emit_act(const RegionPlan& r, std::size_t pc) {
    using K = SpecAct::Kind;
    const SpecAct& a = r.acts[pc - r.lo];
    const std::size_t n = r.vstack_at[pc - r.lo].size();
    switch (a.kind) {
      case K::kConst: {
        std::size_t d = n;
        if (a.out == SpecType::kDbl) {
          movabs(0, static_cast<std::uint64_t>(a.imm));
          if (d < kVstackRegDepth) {
            movq_x_r(static_cast<int>(d), 0);
          } else {
            mov_m13_r(0, bank_disp(static_cast<std::int32_t>(d)));
          }
        } else if (d < kVstackRegDepth) {
          movabs(8 + static_cast<int>(d), static_cast<std::uint64_t>(a.imm));
        } else {
          movabs(0, static_cast<std::uint64_t>(a.imm));
          mov_m13_r(0, bank_disp(static_cast<std::int32_t>(d)));
        }
        break;
      }
      case K::kLoadLocal: {
        const SpecLocal& l = r.locals[static_cast<std::size_t>(a.local)];
        std::size_t d = n;
        if (a.out == SpecType::kDbl) {
          if (d < kVstackRegDepth) {
            movsd_x_m13(static_cast<int>(d), bank_disp(l.bank));
          } else {
            mov_r_m13(0, bank_disp(l.bank));
            mov_m13_r(0, bank_disp(static_cast<std::int32_t>(d)));
          }
        } else if (l.reg >= 0) {
          if (d < kVstackRegDepth) {
            mov_rr(8 + static_cast<int>(d), l.reg);
          } else {
            mov_m13_r(l.reg, bank_disp(static_cast<std::int32_t>(d)));
          }
        } else if (d < kVstackRegDepth) {
          mov_r_m13(8 + static_cast<int>(d), bank_disp(l.bank));
        } else {
          mov_r_m13(0, bank_disp(l.bank));
          mov_m13_r(0, bank_disp(static_cast<std::int32_t>(d)));
        }
        break;
      }
      case K::kStoreLocal:
      case K::kDeclare: {
        // A declare's only machine work is moving the init value into
        // the local's home: the bind itself is virtual until an exit's
        // kDeclare writeback replays op_declare on the real cell.
        const SpecLocal& l = r.locals[static_cast<std::size_t>(a.local)];
        std::size_t d = n - 1;
        if (a.in == SpecType::kDbl) {
          if (d < kVstackRegDepth) {
            movsd_m13_x(static_cast<int>(d), bank_disp(l.bank));
          } else {
            mov_r_m13(0, bank_disp(static_cast<std::int32_t>(d)));
            mov_m13_r(0, bank_disp(l.bank));
          }
        } else if (l.reg >= 0) {
          if (d < kVstackRegDepth) {
            mov_rr(l.reg, 8 + static_cast<int>(d));
          } else {
            mov_r_m13(l.reg, bank_disp(static_cast<std::int32_t>(d)));
          }
        } else if (d < kVstackRegDepth) {
          mov_m13_r(8 + static_cast<int>(d), bank_disp(l.bank));
        } else {
          mov_r_m13(0, bank_disp(static_cast<std::int32_t>(d)));
          mov_m13_r(0, bank_disp(l.bank));
        }
        break;
      }
      case K::kDeclareZero: {
        const SpecLocal& l = r.locals[static_cast<std::size_t>(a.local)];
        if (l.reg >= 0) {
          movabs(l.reg, 0);
        } else {
          // mov qword [r13+bank], 0 (0 bits is also NUMBAR +0.0)
          buf_.u8(0x49); buf_.u8(0xC7);
          modrm_r13(0, bank_disp(l.bank));
          buf_.u32(0);
        }
        break;
      }
      case K::kUnbind:
      case K::kCastNop:
      case K::kPop:
        break;  // bookkeeping only; exits carry the consequences
      case K::kMe:
      case K::kMahFrenz: {
        std::size_t d = n;
        std::int32_t src = a.kind == K::kMe ? 8 : 16;
        if (d < kVstackRegDepth) {
          mov_r_m13(8 + static_cast<int>(d), src);
        } else {
          mov_r_m13(0, src);
          mov_m13_r(0, bank_disp(static_cast<std::int32_t>(d)));
        }
        break;
      }
      case K::kBin:
        emit_bin(a, n);
        break;
      case K::kNot: {
        int reg = gpr_operand(n - 1, 0);
        if (a.in == SpecType::kBool) {
          alu_imm8(6, reg, 1);  // xor reg, 1
        } else {
          test_rr(reg);
          setcc_movzx(0x94, reg);  // sete: NOT numbr is v == 0
        }
        gpr_store_back(n - 1, reg);
        break;
      }
      case K::kSquar: {
        if (a.in == SpecType::kDbl) {
          int x = xmm_operand(n - 1, 4);
          sse_rr(0x59, x, x);  // mulsd x, x
          xmm_store_back(n - 1, x);
        } else {
          int reg = gpr_operand(n - 1, 0);
          imul_rr(reg, reg);
          gpr_store_back(n - 1, reg);
        }
        break;
      }
      case K::kCastIntToDbl:
        promote_int_depth(n - 1);
        break;
      case K::kArrLoad:
        emit_arr(r, pc, a, /*store=*/false);
        break;
      case K::kArrStore:
        emit_arr(r, pc, a, /*store=*/true);
        break;
      case K::kJmp:
        buf_.u8(0xE9);
        route_spec_jump(r, pc, static_cast<std::size_t>(a.aux));
        break;
      case K::kBranch: {
        std::size_t d = n - 1;
        if (d < kVstackRegDepth) {
          test_rr(8 + static_cast<int>(d));
        } else {
          mov_r_m13(0, bank_disp(static_cast<std::int32_t>(d)));
          test_rr(0);
        }
        buf_.u8(0x0F); buf_.u8(0x84);  // jz: branch taken when FAIL/zero
        route_spec_jump(r, pc, static_cast<std::size_t>(a.aux));
        break;
      }
    }
  }

  /// Converts the int at vstack depth `d` to a double in place (the
  /// depth's XMM home, or its bank quad when spilled).
  void promote_int_depth(std::size_t d) {
    if (d < kVstackRegDepth) {
      cvtsi2sd(static_cast<int>(d), 8 + static_cast<int>(d));
    } else {
      mov_r_m13(0, bank_disp(static_cast<std::int32_t>(d)));
      cvtsi2sd(4, 0);
      movsd_m13_x(4, bank_disp(static_cast<std::int32_t>(d)));
    }
  }

  void emit_bin(const SpecAct& a, std::size_t n) {
    using B = ast::BinOp;
    auto op = static_cast<B>(a.aux & kSpecBinOpMask);
    std::size_t dl = n - 2, dr = n - 1;
    if (a.in == SpecType::kDbl) {
      if ((a.aux & kSpecBinPromoteLhs) != 0) promote_int_depth(dl);
      if ((a.aux & kSpecBinPromoteRhs) != 0) promote_int_depth(dr);
      int xl = xmm_operand(dl, 4);
      int xr = xmm_operand(dr, 5);
      if (a.out == SpecType::kDbl) {
        std::uint8_t opc = op == B::kSum       ? 0x58   // addsd
                           : op == B::kDiff    ? 0x5C   // subsd
                           : op == B::kProdukt ? 0x59   // mulsd
                           : op == B::kBiggr   ? 0x5F   // maxsd
                                               : 0x5D;  // minsd
        sse_rr(opc, xl, xr);
        xmm_store_back(dl, xl);
      } else {
        // Compare: the result home flips to the integer bank/register.
        int out = dl < kVstackRegDepth ? 8 + static_cast<int>(dl) : 0;
        switch (op) {
          case B::kBigger:  // x > y, NaN => FAIL (unordered sets CF)
            ucomisd(xl, xr);
            setcc_movzx(0x97, out);  // seta
            break;
          case B::kSmallrCmp:
            ucomisd(xr, xl);
            setcc_movzx(0x97, out);
            break;
          case B::kBothSaem:
          case B::kDiffrint:
            cmpeqsd(xl, xr);  // IEEE ==, exactly Value::saem on NUMBARs
            movq_r_x(out, xl);
            alu_imm8(4, out, 1);  // and out, 1
            if (op == B::kDiffrint) alu_imm8(6, out, 1);  // xor out, 1
            break;
          default:
            break;  // unreachable: bin_result filtered
        }
        gpr_store_back(dl, out);
      }
      return;
    }
    int rl = gpr_operand(dl, 0);
    int rr = gpr_operand(dr, 1);
    if (op == B::kBothSaem || op == B::kDiffrint || op == B::kBigger ||
        op == B::kSmallrCmp) {
      alu_rr(0x39, rl, rr);  // cmp rl, rr
      std::uint8_t cc = op == B::kBothSaem   ? 0x94   // sete
                        : op == B::kDiffrint ? 0x95   // setne
                        : op == B::kBigger   ? 0x9F   // setg
                                             : 0x9C;  // setl
      setcc_movzx(cc, rl);
    } else {
      switch (op) {
        case B::kSum:      alu_rr(0x01, rl, rr); break;
        case B::kDiff:     alu_rr(0x29, rl, rr); break;
        case B::kProdukt:  imul_rr(rl, rr); break;
        case B::kBiggr:    // x > y ? x : y == keep lhs unless smaller
          alu_rr(0x39, rl, rr);
          cmov_rr(0x4C, rl, rr);  // cmovl
          break;
        case B::kSmallr:
          alu_rr(0x39, rl, rr);
          cmov_rr(0x4F, rl, rr);  // cmovg
          break;
        case B::kBothOf:   alu_rr(0x21, rl, rr); break;  // and (0/1)
        case B::kEitherOf: alu_rr(0x09, rl, rr); break;  // or
        case B::kWonOf:    alu_rr(0x31, rl, rr); break;  // xor
        default:           break;  // unreachable
      }
    }
    gpr_store_back(dl, rl);
  }

  /// Indexed array access through the bounds-checking helper. The call
  /// clobbers every caller-saved register, so live virtual-stack entries
  /// below the operands round-trip through their bank slots.
  void emit_arr(const RegionPlan& r, std::size_t pc, const SpecAct& a,
                bool store) {
    const JitSpecHelpers& h = jit_spec_helpers();
    const std::vector<SpecType>& vs = r.vstack_at[pc - r.lo];
    const std::size_t n = vs.size();
    const std::size_t live = n - (store ? 2 : 1);
    for (std::size_t d = 0; d < live && d < kVstackRegDepth; ++d) {
      if (vs[d] == SpecType::kDbl) {
        movsd_m13_x(static_cast<int>(d),
                    bank_disp(static_cast<std::int32_t>(d)));
      } else {
        mov_m13_r(8 + static_cast<int>(d),
                  bank_disp(static_cast<std::int32_t>(d)));
      }
    }
    std::size_t di = store ? n - 2 : n - 1;  // index operand depth
    if (di < kVstackRegDepth) {
      mov_rr(2, 8 + static_cast<int>(di));  // rdx = index
    } else {
      mov_r_m13(2, bank_disp(static_cast<std::int32_t>(di)));
    }
    if (store) {
      std::size_t dv = n - 1;  // value operand depth
      if (a.in == SpecType::kDbl) {
        if (dv < kVstackRegDepth) {
          if (dv != 0) movsd_xx(0, static_cast<int>(dv));
        } else {
          movsd_x_m13(0, bank_disp(static_cast<std::int32_t>(dv)));
        }
      } else if (dv < kVstackRegDepth) {
        mov_rr(1, 8 + static_cast<int>(dv));  // rcx = value
      } else {
        mov_r_m13(1, bank_disp(static_cast<std::int32_t>(dv)));
      }
    }
    buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
    buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(a.aux));
    std::uint64_t fn =
        store ? (a.in == SpecType::kDbl ? h.arr_store_d : h.arr_store_i)
              : (a.out == SpecType::kDbl ? h.arr_load_d : h.arr_load_i);
    spec_call(fn);
    if (store) {
      buf_.u8(0x85); buf_.u8(0xC0);  // test eax,eax
    } else {
      buf_.u8(0x48); buf_.u8(0x85); buf_.u8(0xC0);  // test rax,rax (status)
    }
    js_epilogue();
    if (!store) {
      std::size_t d = n - 1;  // result replaces the index operand
      if (a.out == SpecType::kDbl) {
        if (d < kVstackRegDepth) {
          if (d != 0) movsd_xx(static_cast<int>(d), 0);
        } else {
          movsd_m13_x(0, bank_disp(static_cast<std::int32_t>(d)));
        }
      } else if (d < kVstackRegDepth) {
        mov_rr(8 + static_cast<int>(d), 2);  // value arrives in rdx
      } else {
        mov_m13_r(2, bank_disp(static_cast<std::int32_t>(d)));
      }
    }
    for (std::size_t d = 0; d < live && d < kVstackRegDepth; ++d) {
      if (vs[d] == SpecType::kDbl) {
        movsd_x_m13(static_cast<int>(d),
                    bank_disp(static_cast<std::int32_t>(d)));
      } else {
        mov_r_m13(8 + static_cast<int>(d),
                  bank_disp(static_cast<std::int32_t>(d)));
      }
    }
  }

  /// Materialize a region state for the generic tier: push live virtual
  /// stack entries (bottom first), write every touched local back to its
  /// cell, then resume at the generic block. Helper statuses bail to the
  /// epilogue — only allocation can throw here, and then the program is
  /// dying anyway.
  void emit_exit_stub(const RegionPlan& r, const SpecExit& e) {
    const JitSpecHelpers& h = jit_spec_helpers();
    for (std::size_t d = 0; d < e.vstack.size() && d < kVstackRegDepth;
         ++d) {
      if (e.vstack[d] == SpecType::kDbl) {
        movsd_m13_x(static_cast<int>(d),
                    bank_disp(static_cast<std::int32_t>(d)));
      } else {
        mov_m13_r(8 + static_cast<int>(d),
                  bank_disp(static_cast<std::int32_t>(d)));
      }
    }
    for (std::size_t d = 0; d < e.vstack.size(); ++d) {
      buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
      mov_r_m13(6, bank_disp(static_cast<std::int32_t>(d)));  // rsi = bits
      buf_.u8(0xBA);
      buf_.u32(static_cast<std::uint32_t>(e.vstack[d]));  // edx = type
      spec_call(h.push);
      buf_.u8(0x85); buf_.u8(0xC0);
      js_epilogue();
    }
    for (const SpecWriteback& wb : e.writebacks) {
      const SpecLocal* l =
          wb.local >= 0 ? &r.locals[static_cast<std::size_t>(wb.local)]
                        : nullptr;
      auto load_val = [&](int dst) {
        if (l->reg >= 0) mov_rr(dst, l->reg);
        else mov_r_m13(dst, bank_disp(l->bank));
      };
      buf_.u8(0x48); buf_.u8(0x89); buf_.u8(0xDF);  // mov rdi,rbx
      switch (wb.kind) {
        case SpecWriteback::Kind::kStore:
          buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(wb.slot));
          load_val(2);  // rdx = bits
          buf_.u8(0xB9); buf_.u32(static_cast<std::uint32_t>(wb.type));
          spec_call(h.wb_store);
          buf_.u8(0x85); buf_.u8(0xC0);
          js_epilogue();
          break;
        case SpecWriteback::Kind::kDeclare:
          buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(wb.decl));
          load_val(2);
          buf_.u8(0xB9); buf_.u32(static_cast<std::uint32_t>(wb.type));
          spec_call(h.wb_decl);
          buf_.u8(0x85); buf_.u8(0xC0);
          js_epilogue();
          break;
        case SpecWriteback::Kind::kUnbind:
          buf_.u8(0xBE); buf_.u32(static_cast<std::uint32_t>(wb.slot));
          spec_call(h.wb_unbind);  // cannot throw
          break;
        case SpecWriteback::Kind::kIt:
          load_val(6);  // rsi = bits
          buf_.u8(0xBA); buf_.u32(static_cast<std::uint32_t>(wb.type));
          spec_call(h.wb_it);  // cannot throw
          break;
      }
    }
    buf_.u8(0xE9);  // resume generic (a region lo re-enters via redirect)
    fixups_.push_back({buf_.size(), Fixup::Kind::kBlock, e.target});
    buf_.u32(0);
  }

  /// LOL_JIT_DUMP / --jit-dump: the analysis listing plus a hex dump of
  /// each emitted region (entry, body, stubs).
  void append_dump() {
    std::string& d = *opts_.dump;
    d += describe_plan(chunk_, plan_);
    char line[80];
    for (std::size_t ri = 0; ri < plan_.regions.size(); ++ri) {
      const RegionPlan& r = plan_.regions[ri];
      auto [begin, end] = region_code_[ri];
      std::snprintf(line, sizeof line,
                    "region [%zu, %zu) code @%zx..%zx (%zu bytes)\n", r.lo,
                    r.hi, begin, end, end - begin);
      d += line;
      for (std::size_t off = begin; off < end; off += 16) {
        std::snprintf(line, sizeof line, "  %06zx:", off);
        d += line;
        for (std::size_t i = off; i < end && i < off + 16; ++i) {
          std::snprintf(line, sizeof line, " %02x", buf_.b[i]);
          d += line;
        }
        d += '\n';
      }
    }
  }

  // Region-internal jump whose landing offset isn't known yet.
  struct RegFix {
    std::size_t at = 0;         // rel32 placeholder position
    std::size_t target_pc = 0;  // in-region bytecode target
  };
  // Jump to an exit stub emitted after the region body.
  struct ExitFix {
    std::size_t at = 0;
    std::size_t exit_ix = 0;
  };
  // One step-batch check awaiting its out-of-line slow stub.
  struct SegRec {
    std::size_t jl_at = 0;  // `jl` rel32 placeholder position
    std::size_t cont = 0;   // offset the slow stub jumps back to
    std::int32_t steps = 0;
  };

  const vm::Chunk& chunk_;
  JitEmitOptions opts_;
  CodeBuf buf_;
  std::vector<std::size_t> block_off_;
  std::vector<std::size_t> stub_off_;
  std::size_t epilogue_off_ = 0;
  std::vector<Fixup> fixups_;
  // Operand-type analysis state (build_type_facts / track).
  std::vector<bool> jump_target_;
  std::vector<Tag> slot_tag_;
  std::vector<bool> slot_seen_;
  std::vector<Tag> astack_;
  // Specialized-tier state.
  SpecPlan plan_;
  std::map<std::size_t, std::size_t> region_at_;  // region lo pc -> index
  std::vector<std::size_t> spec_entry_off_;       // per region index
  std::size_t thunk_off_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> region_code_;
  std::vector<RegFix> reg_fix_;
  std::vector<ExitFix> exit_fix_;
  std::vector<SegRec> seg_recs_;
};

void key_u32(std::string& k, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_u64(std::string& k, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) k.push_back(static_cast<char>((x >> (8 * i)) & 0xFF));
}

void key_str(std::string& k, const std::string& s) {
  key_u64(k, s.size());
  k += s;
}

void key_value(std::string& k, const rt::Value& v) {
  if (v.is_noob()) {
    k.push_back(0);
  } else if (v.is_troof()) {
    k.push_back(1);
    k.push_back(v.troof_raw() ? 1 : 0);
  } else if (v.is_numbr()) {
    k.push_back(2);
    key_u64(k, static_cast<std::uint64_t>(v.numbr_raw()));
  } else if (v.is_numbar()) {
    k.push_back(3);
    std::uint64_t bits;
    double d = v.numbar_raw();
    std::memcpy(&bits, &d, sizeof bits);
    key_u64(k, bits);
  } else {
    k.push_back(4);
    key_str(k, v.yarn_raw());
  }
}

}  // namespace

bool emit_chunk_x86_64(const vm::Chunk& chunk, const JitEmitOptions& opts,
                       std::vector<std::uint8_t>* out, std::string* error,
                       JitEmitInfo* info) {
  return Emitter(chunk, opts).emit(out, error, info);
}

std::string chunk_cache_key(const vm::Chunk& chunk) {
  std::string k;
  k.reserve(chunk.code.size() * 13 + 64);
  key_u64(k, chunk.code.size());
  for (const vm::Instr& in : chunk.code) {
    k.push_back(static_cast<char>(in.op));
    key_u32(k, static_cast<std::uint32_t>(in.a));
    key_u32(k, static_cast<std::uint32_t>(in.b));
    key_u32(k, static_cast<std::uint32_t>(in.c));
  }
  key_u64(k, chunk.consts.size());
  for (const rt::Value& v : chunk.consts) key_value(k, v);
  key_u64(k, chunk.decls.size());
  for (const vm::DeclMeta& d : chunk.decls) {
    key_str(k, d.name);
    key_u32(k, static_cast<std::uint32_t>(d.slot));
    k.push_back(d.static_type ? static_cast<char>(1 + static_cast<int>(
                                    *d.static_type))
                              : 0);
    k.push_back(static_cast<char>((d.srsly << 0) | (d.is_array << 1) |
                                  (d.has_init << 2) | (d.has_size << 3) |
                                  (d.symmetric << 4)));
    key_u32(k, static_cast<std::uint32_t>(d.sym_slot));
    key_u32(k, static_cast<std::uint32_t>(d.lock_id));
    k.push_back(static_cast<char>(d.elem));
    k.push_back(d.hint ? static_cast<char>(1 + static_cast<int>(*d.hint))
                       : 0);
  }
  key_u64(k, chunk.funcs.size());
  for (const vm::FuncMeta& f : chunk.funcs) {
    key_str(k, f.name);
    key_u32(k, f.entry);
    key_u32(k, static_cast<std::uint32_t>(f.n_slots));
    key_u32(k, static_cast<std::uint32_t>(f.argc));
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.main_slots));
  key_u64(k, chunk.name_maps.size());
  for (const auto& map : chunk.name_maps) {
    key_u64(k, map.size());
    for (const auto& [name, slot] : map) {
      key_str(k, name);
      key_u32(k, static_cast<std::uint32_t>(slot));
    }
  }
  key_u32(k, static_cast<std::uint32_t>(chunk.lock_count));
  return k;
}

}  // namespace lol::codegen

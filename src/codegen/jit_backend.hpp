// Direct x86-64 execution of VM bytecode (Backend::kJit).
//
// Where Backend::kNative forks the host C toolchain per cold program
// (~100ms, an external dependency), the JIT lowers the already-compiled
// bytecode chunk to machine code in-process — a cold compile is the
// emitter plus one mmap/mprotect, microseconds instead of a fork/exec.
// Semantics are the VM's own op_* bodies called from emitted code, so
// step budgets, deadlines, abort, replay scheduling and fault injection
// carry over unchanged and output stays byte-identical to the other
// backends by construction.
//
// Availability: x86-64 + POSIX mmap, a kernel that allows the W^X
// RW->RX flip, and LOL_JIT != 0. When unavailable the engine silently
// falls back to the cc+dlopen native backend (the portability tier).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "codegen/jit_emitter.hpp"
#include "codegen/jit_memory.hpp"
#include "vm/chunk.hpp"

namespace lol::rt {
struct ExecContext;
}

namespace lol::codegen {

/// True when Backend::kJit can execute here. Memoized after first call.
bool jit_available();

/// True when the type-specialized tier is enabled (LOL_JIT_SPEC != 0).
/// Memoized after first call; part of the code-cache key so flipping it
/// between runs of one process rebuilds rather than mixing tiers.
bool jit_spec_enabled();

/// One program's emitted machine code plus the chunk it interprets.
/// Immutable and shareable across concurrent runs — all mutable state
/// lives in the per-PE Vm handed to run_pe.
class JitProgram {
 public:
  JitProgram(const JitProgram&) = delete;
  JitProgram& operator=(const JitProgram&) = delete;

  /// Emits (or fetches from the process-wide single-flight cache) the
  /// machine code for `chunk`. Keyed by the chunk's serialized bytes
  /// plus the specialization flag, so N concurrent cold misses on one
  /// program emit exactly once and both tiers can coexist. `specialize`
  /// overrides jit_spec_enabled() when set (RunConfig::jit_spec).
  /// Returns null and fills `error` when the JIT is unavailable or
  /// emission fails.
  static std::shared_ptr<const JitProgram> get_or_build(
      std::shared_ptr<const vm::Chunk> chunk, std::string* error,
      std::optional<bool> specialize = std::nullopt);

  /// Runs one PE: resets a Vm over the chunk, enters the emitted code,
  /// and rethrows any exception a helper parked (StepLimitError,
  /// RuntimeError, PeKilledError, abort).
  void run_pe(rt::ExecContext& ctx) const;

  /// Bytes of sealed executable code (compile-cache accounting).
  [[nodiscard]] std::size_t code_bytes() const { return mem_.size(); }

  /// What the emitter produced (specialized-region coverage).
  [[nodiscard]] const JitEmitInfo& emit_info() const { return info_; }

 private:
  JitProgram() = default;

  std::shared_ptr<const vm::Chunk> chunk_;
  ExecMem mem_;
  JitEmitInfo info_;
};

/// Per-CompiledProgram memo mirroring NativeSlot/VmSlot: filled under its
/// own lock on the first Backend::kJit run so warm runs skip the cache
/// key serialization.
struct JitSlot {
  std::mutex m;
  std::shared_ptr<const JitProgram> prog;
};

}  // namespace lol::codegen

#include "codegen/c_emitter.hpp"

#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace lol::codegen {

using support::SemaError;

namespace {

/// Emit-time expression type: native 64-bit int, native double, or a
/// boxed dynamic value. SRSLY-typed NUMBR/NUMBAR variables and numeric
/// literals stay native so hot loops (the paper's n-body) compile to
/// plain C arithmetic.
enum class CT { kI64, kF64, kLolv };

/// How one LOLCODE variable is represented in the generated C.
struct VarInfo {
  enum class Kind {
    kDyn,        // lolv
    kNativeI64,  // long long
    kNativeF64,  // double
    kDynArr,     // lolv* + count
    kI64Arr,     // long long* + count
    kF64Arr,     // double* + count
    kSym,        // symmetric: offset + count members
  };
  Kind kind = Kind::kDyn;
  bool global = false;  // lives in the G-> struct
  std::string c_name;   // mangled name (without G-> prefix)
  // Static typing (scalars/arrays).
  std::optional<ast::TypeKind> stype;
  // Symmetric info.
  ast::TypeKind elem = ast::TypeKind::kNumbr;
  bool is_array = false;
  int lock_id = -1;

  [[nodiscard]] bool array_like() const {
    return kind == Kind::kDynArr || kind == Kind::kI64Arr ||
           kind == Kind::kF64Arr || (kind == Kind::kSym && is_array);
  }
};

std::string mangle(const std::string& name) { return "v_" + name; }
std::string mangle_fn(const std::string& name) { return "f_" + name; }

int lolv_tag(ast::TypeKind t) {
  switch (t) {
    case ast::TypeKind::kNoob:
      return 0;
    case ast::TypeKind::kTroof:
      return 1;
    case ast::TypeKind::kNumbr:
      return 2;
    case ast::TypeKind::kNumbar:
      return 3;
    case ast::TypeKind::kYarn:
      return 4;
  }
  return 0;
}

std::string f64_lit(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos &&
      s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

class Emitter {
 public:
  Emitter(const ast::Program& prog, const sema::Analysis& analysis,
          EmitOptions opts)
      : prog_(prog), analysis_(analysis), opts_(std::move(opts)) {}

  std::string run() {
    collect_globals();
    emit_prelude();
    emit_globals_struct();
    emit_function_decls();
    emit_user_main();
    emit_functions();
    emit_c_main();
    return header_.str() + body_.str();
  }

 private:
  // -- output plumbing ---------------------------------------------------------

  std::ostringstream header_;
  std::ostringstream body_;
  std::string indent_;
  std::ostringstream* out_ = &body_;

  void line(const std::string& s) { *out_ << indent_ << s << "\n"; }
  void raw(const std::string& s) { *out_ << s; }
  void open_block(const std::string& head) {
    line(head + " {");
    indent_ += "  ";
  }
  void close_block(const std::string& tail = "}") {
    indent_.erase(indent_.size() - 2);
    line(tail);
  }

  std::string temp() { return "_t" + std::to_string(temp_counter_++); }

  // -- scopes -------------------------------------------------------------------

  struct Scope {
    Scope* parent = nullptr;
    std::unordered_map<std::string, VarInfo> vars;
  };

  VarInfo* resolve(const std::string& name) {
    for (Scope* s = scope_; s != nullptr; s = s->parent) {
      auto it = s->vars.find(name);
      if (it != s->vars.end()) return &it->second;
    }
    // Top-level declarations live in the globals struct and are visible
    // both to the rest of main and to functions.
    auto it = globals_.vars.find(name);
    if (it != globals_.vars.end()) return &it->second;
    return nullptr;
  }

  VarInfo& must_resolve(const std::string& name, support::SourceLoc loc) {
    VarInfo* v = resolve(name);
    if (v == nullptr) {
      throw SemaError("variable '" + name + "' has not been declared", loc);
    }
    return *v;
  }

  // -- global struct collection -------------------------------------------------

  void collect_globals() {
    // Only declarations directly in the program body are globals (visible
    // to functions), matching the interpreter's root scope.
    for (const auto& s : prog_.body) {
      if (s->kind != ast::StmtKind::kVarDecl) continue;
      const auto& d = static_cast<const ast::VarDeclStmt&>(*s);
      if (globals_.vars.count(d.name)) {
        throw SemaError("variable '" + d.name +
                            "' is already declared in this scope",
                        d.loc);
      }
      VarInfo info = classify(d);
      info.global = true;
      globals_.vars[d.name] = info;
      global_order_.push_back(d.name);
    }
  }

  VarInfo classify(const ast::VarDeclStmt& d) {
    VarInfo info;
    info.c_name = mangle(d.name);
    if (d.scope == ast::DeclScope::kSymmetric) {
      const sema::SymInfo* si = analysis_.sym_for_decl(&d);
      info.kind = VarInfo::Kind::kSym;
      info.elem = d.declared_type.value_or(ast::TypeKind::kNumbr);
      info.is_array = d.is_array;
      info.lock_id = si != nullptr ? si->lock_id : -1;
      info.stype = info.elem;
      return info;
    }
    ast::TypeKind t = d.declared_type.value_or(ast::TypeKind::kNumbr);
    if (d.is_array) {
      if (d.srsly && t == ast::TypeKind::kNumbar) {
        info.kind = VarInfo::Kind::kF64Arr;
      } else if (d.srsly && t == ast::TypeKind::kNumbr) {
        info.kind = VarInfo::Kind::kI64Arr;
      } else {
        info.kind = VarInfo::Kind::kDynArr;
      }
      info.elem = t;
      info.is_array = true;
      if (d.srsly) info.stype = t;
      return info;
    }
    if (d.srsly && d.declared_type == ast::TypeKind::kNumbar) {
      info.kind = VarInfo::Kind::kNativeF64;
      info.stype = ast::TypeKind::kNumbar;
    } else if (d.srsly && d.declared_type == ast::TypeKind::kNumbr) {
      info.kind = VarInfo::Kind::kNativeI64;
      info.stype = ast::TypeKind::kNumbr;
    } else {
      info.kind = VarInfo::Kind::kDyn;
      if (d.srsly && d.declared_type) info.stype = *d.declared_type;
    }
    return info;
  }

  // -- file sections -------------------------------------------------------------

  void emit_prelude() {
    header_ << "/* Generated by lcc (PARALLOL) from " << opts_.source_name
            << ".\n"
            << " * LOLCODE with parallel extensions (Richie & Ross 2017)\n"
            << " * translated to C99 against the lolrt runtime.\n */\n"
            << "#include <string.h>\n"
            << "#include \"lolrt_c.h\"\n\n";
  }

  void emit_globals_struct() {
    header_ << "typedef struct lol_globals {\n";
    for (const auto& name : global_order_) {
      const VarInfo& v = globals_.vars[name];
      switch (v.kind) {
        case VarInfo::Kind::kDyn:
          header_ << "  lolv " << v.c_name << ";\n";
          break;
        case VarInfo::Kind::kNativeI64:
          header_ << "  long long " << v.c_name << ";\n";
          break;
        case VarInfo::Kind::kNativeF64:
          header_ << "  double " << v.c_name << ";\n";
          break;
        case VarInfo::Kind::kDynArr:
          header_ << "  lolv* " << v.c_name << ";\n  long long " << v.c_name
                  << "_n;\n";
          break;
        case VarInfo::Kind::kI64Arr:
          header_ << "  long long* " << v.c_name << ";\n  long long "
                  << v.c_name << "_n;\n";
          break;
        case VarInfo::Kind::kF64Arr:
          header_ << "  double* " << v.c_name << ";\n  long long " << v.c_name
                  << "_n;\n";
          break;
        case VarInfo::Kind::kSym:
          header_ << "  size_t " << v.c_name << "_off;\n  long long "
                  << v.c_name << "_n;\n";
          break;
      }
    }
    header_ << "} lol_globals;\n\n";
  }

  void emit_function_decls() {
    for (const auto& s : prog_.body) {
      if (s->kind != ast::StmtKind::kFuncDef) continue;
      const auto& f = static_cast<const ast::FuncDefStmt&>(*s);
      header_ << "static lolv " << mangle_fn(f.name) << "(lolrt_pe* pe";
      for (const auto& p : f.params) header_ << ", lolv " << mangle(p);
      header_ << ");\n";
    }
    header_ << "\n";
  }

  /// Variable access string for a VarInfo (adds G-> for globals).
  std::string vref(const VarInfo& v) const {
    return v.global ? "G->" + v.c_name : v.c_name;
  }

  void emit_user_main() {
    open_block("void lol_user_main(lolrt_pe* pe)");
    line("lol_globals* G = (lol_globals*)lolrt_alloc(pe, sizeof(lol_globals));");
    line("lolrt_set_user(pe, G);");
    line("lolv lol_it = lolrt_noob(); (void)lol_it;");
    Scope top;
    scope_ = &top;
    in_function_ = false;
    emit_body(prog_.body, /*top_level=*/true);
    scope_ = nullptr;
    close_block();
    raw("\n");
  }

  void emit_functions() {
    for (const auto& s : prog_.body) {
      if (s->kind != ast::StmtKind::kFuncDef) continue;
      const auto& f = static_cast<const ast::FuncDefStmt&>(*s);
      std::string head = "static lolv " + mangle_fn(f.name) + "(lolrt_pe* pe";
      for (const auto& p : f.params) head += ", lolv " + mangle(p);
      head += ")";
      open_block(head);
      line("lol_globals* G = (lol_globals*)lolrt_user(pe); (void)G;");
      line("lolv lol_it = lolrt_noob(); (void)lol_it;");
      line("long long _bff0 = lolrt_bff_depth(pe); (void)_bff0;");
      Scope fn_scope;
      for (const auto& p : f.params) {
        VarInfo info;
        info.kind = VarInfo::Kind::kDyn;
        info.c_name = mangle(p);
        fn_scope.vars[p] = info;
      }
      scope_ = &fn_scope;
      in_function_ = true;
      int saved_txt = txt_depth_;
      txt_depth_ = 0;
      emit_body(f.body, false);
      txt_depth_ = saved_txt;
      in_function_ = false;
      scope_ = nullptr;
      line("return lol_it;");
      close_block();
      raw("\n");
    }
  }

  void emit_c_main() {
    if (!opts_.emit_main) return;
    raw("int main(int argc, char** argv) {\n");
    raw("  return lolrt_run_main(argc, argv, lol_user_main, " +
        std::to_string(analysis_.lock_count) + ");\n");
    raw("}\n");
  }

  // -- expression emission ---------------------------------------------------------

  /// Boxes a native atom into a lolv expression string.
  std::string box(const std::string& atom, CT ct) {
    switch (ct) {
      case CT::kI64:
        return "lolrt_numbr(" + atom + ")";
      case CT::kF64:
        return "lolrt_numbar(" + atom + ")";
      case CT::kLolv:
        return atom;
    }
    return atom;
  }

  std::string to_i64(const std::string& atom, CT ct) {
    switch (ct) {
      case CT::kI64:
        return atom;
      case CT::kF64:
        return "(long long)(" + atom + ")";
      case CT::kLolv:
        return "lolrt_to_i64(pe, " + atom + ")";
    }
    return atom;
  }

  std::string to_f64(const std::string& atom, CT ct) {
    switch (ct) {
      case CT::kI64:
        return "(double)(" + atom + ")";
      case CT::kF64:
        return atom;
      case CT::kLolv:
        return "lolrt_to_f64(pe, " + atom + ")";
    }
    return atom;
  }

  /// Emits an expression; returns an atom (temporary name or literal) and
  /// its emit-time type. All side effects land in preamble statements, so
  /// evaluation order is strictly left-to-right.
  std::string emit_expr(const ast::Expr& e, CT& ct) {
    switch (e.kind) {
      case ast::ExprKind::kNumbrLit:
        ct = CT::kI64;
        return std::to_string(static_cast<const ast::NumbrLit&>(e).value) +
               "LL";
      case ast::ExprKind::kNumbarLit:
        ct = CT::kF64;
        return f64_lit(static_cast<const ast::NumbarLit&>(e).value);
      case ast::ExprKind::kTroofLit: {
        ct = CT::kLolv;
        std::string t = temp();
        line("lolv " + t + " = lolrt_troof(" +
             (static_cast<const ast::TroofLit&>(e).value ? "1" : "0") + ");");
        return t;
      }
      case ast::ExprKind::kNoobLit: {
        ct = CT::kLolv;
        std::string t = temp();
        line("lolv " + t + " = lolrt_noob();");
        return t;
      }
      case ast::ExprKind::kYarnLit:
        return emit_yarn(static_cast<const ast::YarnLit&>(e), ct);
      case ast::ExprKind::kVarRef:
      case ast::ExprKind::kSrsRef:
      case ast::ExprKind::kIndex:
      case ast::ExprKind::kItRef:
        return emit_read_place(e, ct);
      case ast::ExprKind::kMe:
        ct = CT::kI64;
        return "lolrt_me(pe)";
      case ast::ExprKind::kMahFrenz:
        ct = CT::kI64;
        return "lolrt_n_pes(pe)";
      case ast::ExprKind::kWhatevr: {
        ct = CT::kI64;
        std::string t = temp();
        line("long long " + t + " = lolrt_whatevr(pe);");
        return t;
      }
      case ast::ExprKind::kWhatevar: {
        ct = CT::kF64;
        std::string t = temp();
        line("double " + t + " = lolrt_whatevar(pe);");
        return t;
      }
      case ast::ExprKind::kBinary:
        return emit_binary(static_cast<const ast::BinaryExpr&>(e), ct);
      case ast::ExprKind::kNary:
        return emit_nary(static_cast<const ast::NaryExpr&>(e), ct);
      case ast::ExprKind::kUnary:
        return emit_unary(static_cast<const ast::UnaryExpr&>(e), ct);
      case ast::ExprKind::kCast: {
        const auto& c = static_cast<const ast::CastExpr&>(e);
        CT vt;
        std::string v = emit_expr(*c.value, vt);
        std::string t = temp();
        line("lolv " + t + " = lolrt_cast(pe, " + box(v, vt) + ", " +
             std::to_string(lolv_tag(c.type)) + ", 1);");
        ct = CT::kLolv;
        return t;
      }
      case ast::ExprKind::kCall: {
        const auto& c = static_cast<const ast::CallExpr&>(e);
        if (!analysis_.functions.count(c.callee)) {
          throw SemaError("call to unknown function '" + c.callee + "'",
                          c.loc);
        }
        std::vector<std::string> args;
        for (const auto& a : c.args) {
          CT at;
          std::string atom = emit_expr(*a, at);
          std::string t = temp();
          line("lolv " + t + " = " + box(atom, at) + ";");
          args.push_back(t);
        }
        std::string t = temp();
        std::string call = "lolv " + t + " = " + mangle_fn(c.callee) + "(pe";
        for (const auto& a : args) call += ", " + a;
        call += ");";
        line(call);
        ct = CT::kLolv;
        return t;
      }
    }
    throw SemaError("internal: unhandled expression in C emitter", e.loc);
  }

  std::string emit_yarn(const ast::YarnLit& y, CT& ct) {
    ct = CT::kLolv;
    std::string t = temp();
    if (y.is_plain()) {
      line("lolv " + t + " = lolrt_yarn(pe, \"" +
           support::c_escape(y.plain_text()) + "\");");
      return t;
    }
    // Interpolation -> SMOOSH of segments.
    std::vector<std::string> parts;
    for (const auto& seg : y.segments) {
      if (seg.is_var) {
        VarInfo& v = must_resolve(seg.text, y.loc);
        CT st;
        std::string atom = read_scalar(v, false, y.loc, st);
        std::string pt = temp();
        line("lolv " + pt + " = " + box(atom, st) + ";");
        parts.push_back(pt);
      } else {
        std::string pt = temp();
        line("lolv " + pt + " = lolrt_yarn(pe, \"" +
             support::c_escape(seg.text) + "\");");
        parts.push_back(pt);
      }
    }
    std::string arr = temp();
    std::string init = "lolv " + arr + "[] = {";
    for (std::size_t i = 0; i < parts.size(); ++i) {
      init += (i ? ", " : "") + parts[i];
    }
    init += "};";
    line(init);
    line("lolv " + t + " = lolrt_nary(pe, 2, " +
         std::to_string(parts.size()) + ", " + arr + ");");
    return t;
  }

  std::string emit_binary(const ast::BinaryExpr& b, CT& ct) {
    CT lt, rt2;
    std::string lhs = emit_expr(*b.lhs, lt);
    std::string rhs = emit_expr(*b.rhs, rt2);
    bool native = lt != CT::kLolv && rt2 != CT::kLolv;

    auto arith_native = [&](const char* op_c) -> std::string {
      bool flt = lt == CT::kF64 || rt2 == CT::kF64;
      ct = flt ? CT::kF64 : CT::kI64;
      std::string t = temp();
      line(std::string(flt ? "double " : "long long ") + t + " = (" + lhs +
           ") " + op_c + " (" + rhs + ");");
      return t;
    };

    if (native) {
      bool flt = lt == CT::kF64 || rt2 == CT::kF64;
      switch (b.op) {
        case ast::BinOp::kSum:
          return arith_native("+");
        case ast::BinOp::kDiff:
          return arith_native("-");
        case ast::BinOp::kProdukt:
          return arith_native("*");
        case ast::BinOp::kQuoshunt: {
          ct = flt ? CT::kF64 : CT::kI64;
          std::string t = temp();
          if (flt) {
            line("double " + t + " = lolrt_fdiv(pe, " + to_f64(lhs, lt) +
                 ", " + to_f64(rhs, rt2) + ");");
          } else {
            line("long long " + t + " = lolrt_idiv(pe, " + lhs + ", " + rhs +
                 ");");
          }
          return t;
        }
        case ast::BinOp::kMod: {
          ct = flt ? CT::kF64 : CT::kI64;
          std::string t = temp();
          if (flt) {
            line("double " + t + " = lolrt_fmod2(pe, " + to_f64(lhs, lt) +
                 ", " + to_f64(rhs, rt2) + ");");
          } else {
            line("long long " + t + " = lolrt_imod(pe, " + lhs + ", " + rhs +
                 ");");
          }
          return t;
        }
        case ast::BinOp::kBiggr:
        case ast::BinOp::kSmallr: {
          ct = flt ? CT::kF64 : CT::kI64;
          const char* cmp = b.op == ast::BinOp::kBiggr ? ">" : "<";
          std::string t = temp();
          std::string a = flt ? to_f64(lhs, lt) : lhs;
          std::string c = flt ? to_f64(rhs, rt2) : rhs;
          std::string ty = flt ? "double " : "long long ";
          line(ty + t + " = (" + a + ") " + cmp + " (" + c + ") ? (" + a +
               ") : (" + c + ");");
          return t;
        }
        case ast::BinOp::kBothSaem:
        case ast::BinOp::kDiffrint:
        case ast::BinOp::kBigger:
        case ast::BinOp::kSmallrCmp: {
          ct = CT::kLolv;
          const char* cmp = b.op == ast::BinOp::kBothSaem   ? "=="
                            : b.op == ast::BinOp::kDiffrint ? "!="
                            : b.op == ast::BinOp::kBigger   ? ">"
                                                            : "<";
          std::string a = flt ? to_f64(lhs, lt) : lhs;
          std::string c = flt ? to_f64(rhs, rt2) : rhs;
          std::string t = temp();
          line("lolv " + t + " = lolrt_troof((" + a + ") " + cmp + " (" + c +
               "));");
          return t;
        }
        default:
          break;  // boolean ops fall through to the boxed path
      }
    }
    // Boxed path: exact LOLCODE semantics from the shared runtime.
    std::string t = temp();
    line("lolv " + t + " = lolrt_binary(pe, " +
         std::to_string(static_cast<int>(b.op)) + ", " + box(lhs, lt) + ", " +
         box(rhs, rt2) + ");");
    ct = CT::kLolv;
    return t;
  }

  std::string emit_unary(const ast::UnaryExpr& u, CT& ct) {
    CT vt;
    std::string v = emit_expr(*u.operand, vt);
    if (vt != CT::kLolv) {
      switch (u.op) {
        case ast::UnOp::kSquar: {
          ct = vt;
          std::string t = temp();
          line(std::string(vt == CT::kF64 ? "double " : "long long ") + t +
               " = (" + v + ") * (" + v + ");");
          return t;
        }
        case ast::UnOp::kUnsquar: {
          ct = CT::kF64;
          std::string t = temp();
          line("double " + t + " = lolrt_sqrt2(pe, " + to_f64(v, vt) + ");");
          return t;
        }
        case ast::UnOp::kFlip: {
          ct = CT::kF64;
          std::string t = temp();
          line("double " + t + " = lolrt_flip2(pe, " + to_f64(v, vt) + ");");
          return t;
        }
        case ast::UnOp::kNot:
          break;
      }
    }
    std::string t = temp();
    line("lolv " + t + " = lolrt_unary(pe, " +
         std::to_string(static_cast<int>(u.op)) + ", " + box(v, vt) + ");");
    ct = CT::kLolv;
    return t;
  }

  std::string emit_nary(const ast::NaryExpr& n, CT& ct) {
    std::vector<std::string> parts;
    for (const auto& o : n.operands) {
      CT ot;
      std::string atom = emit_expr(*o, ot);
      std::string t = temp();
      line("lolv " + t + " = " + box(atom, ot) + ";");
      parts.push_back(t);
    }
    std::string arr = temp();
    std::string init = "lolv " + arr + "[] = {";
    for (std::size_t i = 0; i < parts.size(); ++i) {
      init += (i ? ", " : "") + parts[i];
    }
    init += "};";
    line(init);
    std::string t = temp();
    line("lolv " + t + " = lolrt_nary(pe, " +
         std::to_string(static_cast<int>(n.op)) + ", " +
         std::to_string(parts.size()) + ", " + arr + ");");
    ct = CT::kLolv;
    return t;
  }

  // -- places ------------------------------------------------------------------------

  /// Reads a scalar variable (not indexed).
  std::string read_scalar(VarInfo& v, bool remote, support::SourceLoc loc,
                          CT& ct) {
    if (v.array_like()) {
      throw SemaError("cannot read an array as a value; index it with 'Z",
                      loc);
    }
    std::string r = remote ? "1" : "0";
    switch (v.kind) {
      case VarInfo::Kind::kSym: {
        std::string t = temp();
        if (v.elem == ast::TypeKind::kNumbar) {
          ct = CT::kF64;
          line("double " + t + " = lolrt_sym_load_f64(pe, " + vref(v) +
               "_off, 1, 0, " + r + ");");
        } else if (v.elem == ast::TypeKind::kNumbr) {
          ct = CT::kI64;
          line("long long " + t + " = lolrt_sym_load_i64(pe, " + vref(v) +
               "_off, 1, 0, " + r + ");");
        } else {
          ct = CT::kLolv;
          line("lolv " + t + " = lolrt_sym_load(pe, " + vref(v) +
               "_off, 1, " + std::to_string(lolv_tag(v.elem)) + ", 0, " + r +
               ");");
        }
        return t;
      }
      // Reads are materialized into temporaries so sibling operands with
      // side effects cannot reorder against them (LOLCODE evaluates
      // strictly left to right).
      case VarInfo::Kind::kNativeI64: {
        if (remote) break;
        ct = CT::kI64;
        std::string t = temp();
        line("long long " + t + " = " + vref(v) + ";");
        return t;
      }
      case VarInfo::Kind::kNativeF64: {
        if (remote) break;
        ct = CT::kF64;
        std::string t = temp();
        line("double " + t + " = " + vref(v) + ";");
        return t;
      }
      case VarInfo::Kind::kDyn: {
        if (remote) break;
        ct = CT::kLolv;
        std::string t = temp();
        line("lolv " + t + " = " + vref(v) + ";");
        return t;
      }
      default:
        break;
    }
    throw SemaError(
        "UR requires a symmetric variable (declare it with WE HAS A)", loc);
  }

  /// Reads an element of an array variable.
  std::string read_element(VarInfo& v, const std::string& idx_atom, CT idx_ct,
                           bool remote, support::SourceLoc loc, CT& ct) {
    std::string idx = to_i64(idx_atom, idx_ct);
    std::string r = remote ? "1" : "0";
    switch (v.kind) {
      case VarInfo::Kind::kSym: {
        if (!v.is_array) {
          throw SemaError("'Z index applied to a non-array variable", loc);
        }
        std::string t = temp();
        if (v.elem == ast::TypeKind::kNumbar) {
          ct = CT::kF64;
          line("double " + t + " = lolrt_sym_load_f64(pe, " + vref(v) +
               "_off, " + vref(v) + "_n, " + idx + ", " + r + ");");
        } else if (v.elem == ast::TypeKind::kNumbr) {
          ct = CT::kI64;
          line("long long " + t + " = lolrt_sym_load_i64(pe, " + vref(v) +
               "_off, " + vref(v) + "_n, " + idx + ", " + r + ");");
        } else {
          ct = CT::kLolv;
          line("lolv " + t + " = lolrt_sym_load(pe, " + vref(v) + "_off, " +
               vref(v) + "_n, " + std::to_string(lolv_tag(v.elem)) + ", " +
               idx + ", " + r + ");");
        }
        return t;
      }
      case VarInfo::Kind::kF64Arr:
      case VarInfo::Kind::kI64Arr:
      case VarInfo::Kind::kDynArr: {
        if (remote) {
          throw SemaError(
              "UR requires a symmetric array (declare it with WE HAS A)",
              loc);
        }
        std::string t = temp();
        std::string access = vref(v) + "[lolrt_idx(pe, " + idx + ", " +
                             vref(v) + "_n)]";
        if (v.kind == VarInfo::Kind::kF64Arr) {
          ct = CT::kF64;
          line("double " + t + " = " + access + ";");
        } else if (v.kind == VarInfo::Kind::kI64Arr) {
          ct = CT::kI64;
          line("long long " + t + " = " + access + ";");
        } else {
          ct = CT::kLolv;
          line("lolv " + t + " = " + access + ";");
        }
        return t;
      }
      default:
        throw SemaError("'Z index applied to a non-array variable", loc);
    }
  }

  std::string emit_read_place(const ast::Expr& e, CT& ct) {
    if (e.kind == ast::ExprKind::kItRef) {
      ct = CT::kLolv;
      std::string t = temp();
      line("lolv " + t + " = lol_it;");
      return t;
    }
    if (e.kind == ast::ExprKind::kVarRef) {
      const auto& v = static_cast<const ast::VarRef&>(e);
      return read_scalar(must_resolve(v.name, v.loc),
                         v.locality == ast::Locality::kRemote, v.loc, ct);
    }
    if (e.kind == ast::ExprKind::kIndex) {
      const auto& ix = static_cast<const ast::IndexExpr&>(e);
      if (ix.base->kind != ast::ExprKind::kVarRef) {
        throw SemaError("SRS is not supported by the C backend; use lolrun",
                        ix.loc);
      }
      const auto& base = static_cast<const ast::VarRef&>(*ix.base);
      CT idx_ct;
      std::string idx = emit_expr(*ix.index, idx_ct);
      return read_element(must_resolve(base.name, base.loc), idx, idx_ct,
                          base.locality == ast::Locality::kRemote, ix.loc,
                          ct);
    }
    throw SemaError("SRS is not supported by the C backend; use lolrun",
                    e.loc);
  }

  /// Stores `atom` (of type `ct`) into the place `target`.
  void emit_store_place(const ast::Expr& target, const std::string& atom,
                        CT ct) {
    if (target.kind == ast::ExprKind::kItRef) {
      line("lol_it = " + box(atom, ct) + ";");
      return;
    }
    if (target.kind == ast::ExprKind::kVarRef) {
      const auto& vr = static_cast<const ast::VarRef&>(target);
      VarInfo& v = must_resolve(vr.name, vr.loc);
      bool remote = vr.locality == ast::Locality::kRemote;
      store_scalar(v, remote, atom, ct, vr.loc);
      return;
    }
    if (target.kind == ast::ExprKind::kIndex) {
      const auto& ix = static_cast<const ast::IndexExpr&>(target);
      if (ix.base->kind != ast::ExprKind::kVarRef) {
        throw SemaError("SRS is not supported by the C backend; use lolrun",
                        ix.loc);
      }
      const auto& base = static_cast<const ast::VarRef&>(*ix.base);
      VarInfo& v = must_resolve(base.name, base.loc);
      bool remote = base.locality == ast::Locality::kRemote;
      CT idx_ct;
      std::string idx_atom = emit_expr(*ix.index, idx_ct);
      std::string idx = to_i64(idx_atom, idx_ct);
      store_element(v, remote, idx, atom, ct, ix.loc);
      return;
    }
    throw SemaError("invalid assignment target in C backend", target.loc);
  }

  void store_scalar(VarInfo& v, bool remote, const std::string& atom, CT ct,
                    support::SourceLoc loc) {
    if (v.array_like()) {
      throw SemaError("cannot assign a scalar to an array; index it with 'Z",
                      loc);
    }
    std::string r = remote ? "1" : "0";
    switch (v.kind) {
      case VarInfo::Kind::kSym:
        if (v.elem == ast::TypeKind::kNumbar) {
          line("lolrt_sym_store_f64(pe, " + vref(v) + "_off, 1, 0, " + r +
               ", " + to_f64(atom, ct) + ");");
        } else if (v.elem == ast::TypeKind::kNumbr) {
          line("lolrt_sym_store_i64(pe, " + vref(v) + "_off, 1, 0, " + r +
               ", " + to_i64(atom, ct) + ");");
        } else {
          line("lolrt_sym_store(pe, " + vref(v) + "_off, 1, " +
               std::to_string(lolv_tag(v.elem)) + ", 0, " + r + ", " +
               box(atom, ct) + ");");
        }
        return;
      case VarInfo::Kind::kNativeI64:
        if (remote) break;
        line(vref(v) + " = " + to_i64(atom, ct) + ";");
        return;
      case VarInfo::Kind::kNativeF64:
        if (remote) break;
        line(vref(v) + " = " + to_f64(atom, ct) + ";");
        return;
      case VarInfo::Kind::kDyn:
        if (remote) break;
        if (v.stype) {
          line(vref(v) + " = lolrt_cast(pe, " + box(atom, ct) + ", " +
               std::to_string(lolv_tag(*v.stype)) + ", 0);");
        } else {
          line(vref(v) + " = " + box(atom, ct) + ";");
        }
        return;
      default:
        break;
    }
    throw SemaError(
        "UR requires a symmetric variable (declare it with WE HAS A)", loc);
  }

  void store_element(VarInfo& v, bool remote, const std::string& idx,
                     const std::string& atom, CT ct, support::SourceLoc loc) {
    std::string r = remote ? "1" : "0";
    switch (v.kind) {
      case VarInfo::Kind::kSym:
        if (!v.is_array) {
          throw SemaError("'Z index applied to a non-array variable", loc);
        }
        if (v.elem == ast::TypeKind::kNumbar) {
          line("lolrt_sym_store_f64(pe, " + vref(v) + "_off, " + vref(v) +
               "_n, " + idx + ", " + r + ", " + to_f64(atom, ct) + ");");
        } else if (v.elem == ast::TypeKind::kNumbr) {
          line("lolrt_sym_store_i64(pe, " + vref(v) + "_off, " + vref(v) +
               "_n, " + idx + ", " + r + ", " + to_i64(atom, ct) + ");");
        } else {
          line("lolrt_sym_store(pe, " + vref(v) + "_off, " + vref(v) +
               "_n, " + std::to_string(lolv_tag(v.elem)) + ", " + idx + ", " +
               r + ", " + box(atom, ct) + ");");
        }
        return;
      case VarInfo::Kind::kF64Arr:
        if (remote) break;
        line(vref(v) + "[lolrt_idx(pe, " + idx + ", " + vref(v) + "_n)] = " +
             to_f64(atom, ct) + ";");
        return;
      case VarInfo::Kind::kI64Arr:
        if (remote) break;
        line(vref(v) + "[lolrt_idx(pe, " + idx + ", " + vref(v) + "_n)] = " +
             to_i64(atom, ct) + ";");
        return;
      case VarInfo::Kind::kDynArr: {
        if (remote) break;
        std::string rhs = box(atom, ct);
        if (v.stype) {
          rhs = "lolrt_cast(pe, " + rhs + ", " +
                std::to_string(lolv_tag(*v.stype)) + ", 0)";
        }
        line(vref(v) + "[lolrt_idx(pe, " + idx + ", " + vref(v) + "_n)] = " +
             rhs + ";");
        return;
      }
      default:
        throw SemaError("'Z index applied to a non-array variable", loc);
    }
    throw SemaError(
        "UR requires a symmetric array (declare it with WE HAS A)", loc);
  }

  // -- statements -----------------------------------------------------------------

  struct BreakCtx {
    int txt_depth = 0;
  };

  void emit_body(const ast::StmtList& body, bool top_level) {
    for (const auto& s : body) emit_stmt(*s, top_level);
  }

  void emit_stmt(const ast::Stmt& s, bool top_level) {
    // Mirror the interpreter's per-statement budget charge
    // (rt::ExecContext::count_step) so max_steps and external aborts
    // behave identically on the native path. Function definitions are
    // hoisted out of the statement stream, so nothing executes here.
    if (s.kind != ast::StmtKind::kFuncDef) line("lolrt_step(pe);");
    switch (s.kind) {
      case ast::StmtKind::kVarDecl:
        emit_decl(static_cast<const ast::VarDeclStmt&>(s), top_level);
        return;
      case ast::StmtKind::kAssign:
        emit_assign(static_cast<const ast::AssignStmt&>(s));
        return;
      case ast::StmtKind::kExpr: {
        CT ct;
        std::string atom =
            emit_expr(*static_cast<const ast::ExprStmt&>(s).expr, ct);
        line("lol_it = " + box(atom, ct) + ";");
        return;
      }
      case ast::StmtKind::kVisible: {
        const auto& v = static_cast<const ast::VisibleStmt&>(s);
        std::vector<std::string> parts;
        for (const auto& a : v.args) {
          CT ct;
          std::string atom = emit_expr(*a, ct);
          std::string t = temp();
          line("lolv " + t + " = " + box(atom, ct) + ";");
          parts.push_back(t);
        }
        std::string arr = temp();
        std::string init = "lolv " + arr + "[] = {";
        for (std::size_t i = 0; i < parts.size(); ++i) {
          init += (i ? ", " : "") + parts[i];
        }
        init += "};";
        line(init);
        line("lolrt_visible(pe, " + std::to_string(parts.size()) + ", " +
             arr + ", " + (v.newline ? "1" : "0") + ", " +
             (v.to_stderr ? "1" : "0") + ");");
        return;
      }
      case ast::StmtKind::kGimmeh: {
        const auto& g = static_cast<const ast::GimmehStmt&>(s);
        std::string t = temp();
        line("lolv " + t + " = lolrt_gimmeh(pe);");
        emit_store_place(*g.target, t, CT::kLolv);
        return;
      }
      case ast::StmtKind::kCastTo: {
        const auto& c = static_cast<const ast::CastToStmt&>(s);
        CT ct;
        std::string cur = emit_read_place(*c.target, ct);
        std::string t = temp();
        line("lolv " + t + " = lolrt_cast(pe, " + box(cur, ct) + ", " +
             std::to_string(lolv_tag(c.type)) + ", 1);");
        emit_store_place(*c.target, t, CT::kLolv);
        return;
      }
      case ast::StmtKind::kORly:
        emit_orly(static_cast<const ast::ORlyStmt&>(s));
        return;
      case ast::StmtKind::kWtf:
        emit_wtf(static_cast<const ast::WtfStmt&>(s));
        return;
      case ast::StmtKind::kLoop:
        emit_loop(static_cast<const ast::LoopStmt&>(s));
        return;
      case ast::StmtKind::kGtfo:
        emit_gtfo(s.loc);
        return;
      case ast::StmtKind::kFoundYr: {
        const auto& f = static_cast<const ast::FoundYrStmt&>(s);
        CT ct;
        std::string atom = emit_expr(*f.value, ct);
        line("lolrt_bff_reset(pe, _bff0);");
        line("return " + box(atom, ct) + ";");
        return;
      }
      case ast::StmtKind::kFuncDef:
        return;  // emitted separately
      case ast::StmtKind::kCanHas:
        line("/* CAN HAS " +
             static_cast<const ast::CanHasStmt&>(s).library +
             "? — built in */");
        return;
      case ast::StmtKind::kHugz:
        line("lolrt_hugz(pe);");
        return;
      case ast::StmtKind::kLock: {
        const auto& l = static_cast<const ast::LockStmt&>(s);
        if (l.target->kind != ast::ExprKind::kVarRef) {
          throw SemaError("SRS is not supported by the C backend; use lolrun",
                          l.loc);
        }
        const auto& vr = static_cast<const ast::VarRef&>(*l.target);
        VarInfo& v = must_resolve(vr.name, vr.loc);
        if (v.kind != VarInfo::Kind::kSym || v.lock_id < 0) {
          throw SemaError(
              "variable has no lock: declare it WE HAS A ... AN IM SHARIN IT",
              l.loc);
        }
        switch (l.op) {
          case ast::LockOp::kAcquire:
            line("lolrt_lock(pe, " + std::to_string(v.lock_id) + ");");
            line("lol_it = lolrt_troof(1);");
            return;
          case ast::LockOp::kTry:
            line("lol_it = lolrt_troof(lolrt_trylock(pe, " +
                 std::to_string(v.lock_id) + "));");
            return;
          case ast::LockOp::kRelease:
            line("lolrt_unlock(pe, " + std::to_string(v.lock_id) + ");");
            return;
        }
        return;
      }
      case ast::StmtKind::kTxt: {
        const auto& t = static_cast<const ast::TxtStmt&>(s);
        CT ct;
        std::string target = emit_expr(*t.target_pe, ct);
        line("lolrt_bff_push(pe, " + to_i64(target, ct) + ");");
        open_block("");
        ++txt_depth_;
        Scope scope;
        scope.parent = scope_;
        scope_ = &scope;
        emit_body(t.body, false);
        scope_ = scope.parent;
        --txt_depth_;
        close_block();
        line("lolrt_bff_pop(pe, 1);");
        return;
      }
    }
    throw SemaError("internal: unhandled statement in C emitter", s.loc);
  }

  void emit_decl(const ast::VarDeclStmt& d, bool top_level) {
    VarInfo info;
    bool is_global = top_level && !in_function_;
    if (is_global) {
      info = globals_.vars[d.name];  // pre-collected
    } else {
      if (d.scope == ast::DeclScope::kSymmetric) {
        throw SemaError(
            "symmetric declarations (WE HAS A) must appear at the top level",
            d.loc);
      }
      info = classify(d);
      // Uniquify block locals against C shadowing pitfalls.
      info.c_name = mangle(d.name) + "_s" + std::to_string(local_counter_++);
      if (scope_->vars.count(d.name)) {
        throw SemaError("variable '" + d.name +
                            "' is already declared in this scope",
                        d.loc);
      }
      scope_->vars[d.name] = info;
    }
    VarInfo& v = is_global ? globals_.vars[d.name] : scope_->vars[d.name];

    // Size expression (arrays).
    std::string count = "1";
    if (d.is_array) {
      CT ct;
      std::string atom = emit_expr(*d.array_size, ct);
      count = to_i64(atom, ct);
    }

    switch (v.kind) {
      case VarInfo::Kind::kSym: {
        line((is_global ? "" : "size_t ") + vref(v) + "_off = lolrt_shmalloc(pe, " +
             count + ");");
        line((is_global ? "" : "long long ") + vref(v) + "_n = " + count +
             ";");
        if (d.init) {
          CT ct;
          std::string atom = emit_expr(*d.init, ct);
          store_scalar(v, false, atom, ct, d.loc);
        }
        return;
      }
      case VarInfo::Kind::kF64Arr:
      case VarInfo::Kind::kI64Arr:
      case VarInfo::Kind::kDynArr: {
        const char* ty = v.kind == VarInfo::Kind::kF64Arr   ? "double"
                         : v.kind == VarInfo::Kind::kI64Arr ? "long long"
                                                            : "lolv";
        line((is_global ? "" : std::string("long long ")) + vref(v) +
             "_n = " + count + ";");
        line((is_global ? "" : std::string(ty) + "* ") + vref(v) + " = (" +
             ty + "*)lolrt_alloc(pe, (size_t)(" + vref(v) + "_n) * sizeof(" +
             ty + "));");
        if (v.kind == VarInfo::Kind::kDynArr) {
          line("lolrt_arr_fill(pe, " + vref(v) + ", " + vref(v) + "_n, " +
               std::to_string(lolv_tag(v.elem)) + ");");
        }
        return;
      }
      case VarInfo::Kind::kNativeI64:
      case VarInfo::Kind::kNativeF64: {
        std::string init = v.kind == VarInfo::Kind::kNativeF64 ? "0.0" : "0";
        if (d.init) {
          CT ct;
          std::string atom = emit_expr(*d.init, ct);
          init = v.kind == VarInfo::Kind::kNativeF64 ? to_f64(atom, ct)
                                                     : to_i64(atom, ct);
        }
        const char* ty =
            v.kind == VarInfo::Kind::kNativeF64 ? "double " : "long long ";
        line((is_global ? "" : std::string(ty)) + vref(v) + " = " + init +
             ";");
        return;
      }
      case VarInfo::Kind::kDyn: {
        std::string init = "lolrt_noob()";
        if (d.declared_type) {
          switch (*d.declared_type) {
            case ast::TypeKind::kTroof:
              init = "lolrt_troof(0)";
              break;
            case ast::TypeKind::kNumbr:
              init = "lolrt_numbr(0)";
              break;
            case ast::TypeKind::kNumbar:
              init = "lolrt_numbar(0.0)";
              break;
            case ast::TypeKind::kYarn:
              init = "lolrt_yarn(pe, \"\")";
              break;
            case ast::TypeKind::kNoob:
              break;
          }
        }
        if (d.init) {
          CT ct;
          std::string atom = emit_expr(*d.init, ct);
          init = box(atom, ct);
          if (v.stype) {
            init = "lolrt_cast(pe, " + init + ", " +
                   std::to_string(lolv_tag(*v.stype)) + ", 0)";
          }
        }
        line((is_global ? "" : std::string("lolv ")) + vref(v) + " = " +
             init + ";");
        return;
      }
    }
  }

  void emit_assign(const ast::AssignStmt& a) {
    // Whole-array copy when both sides are unindexed array variables.
    if (a.target->kind == ast::ExprKind::kVarRef &&
        a.value->kind == ast::ExprKind::kVarRef) {
      const auto& dst_r = static_cast<const ast::VarRef&>(*a.target);
      const auto& src_r = static_cast<const ast::VarRef&>(*a.value);
      VarInfo* dst = resolve(dst_r.name);
      VarInfo* src = resolve(src_r.name);
      if (dst != nullptr && src != nullptr && dst->array_like() &&
          src->array_like()) {
        emit_array_copy(a, *dst, dst_r.locality == ast::Locality::kRemote,
                        *src, src_r.locality == ast::Locality::kRemote);
        return;
      }
    }
    CT ct;
    std::string atom = emit_expr(*a.value, ct);
    emit_store_place(*a.target, atom, ct);
  }

  void emit_array_copy(const ast::AssignStmt& a, VarInfo& dst,
                       bool dst_remote, VarInfo& src, bool src_remote) {
    bool dst_sym = dst.kind == VarInfo::Kind::kSym;
    bool src_sym = src.kind == VarInfo::Kind::kSym;
    if ((dst_remote && !dst_sym) || (src_remote && !src_sym)) {
      throw SemaError("UR requires a symmetric array", a.loc);
    }
    line("if (" + vref(dst) + "_n != " + vref(src) + "_n) " +
         "lolrt_fail(pe, \"array copy size mismatch\");");
    if (dst_sym && src_sym && dst.elem == src.elem) {
      line("lolrt_sym_copy(pe, " + vref(dst) + "_off, " +
           (dst_remote ? "1" : "0") + ", " + vref(src) + "_off, " +
           (src_remote ? "1" : "0") + ", " + vref(dst) + "_n);");
      return;
    }
    if (dst.kind == src.kind && !dst_sym &&
        (dst.kind == VarInfo::Kind::kF64Arr ||
         dst.kind == VarInfo::Kind::kI64Arr ||
         dst.kind == VarInfo::Kind::kDynArr)) {
      const char* ty = dst.kind == VarInfo::Kind::kF64Arr   ? "double"
                       : dst.kind == VarInfo::Kind::kI64Arr ? "long long"
                                                            : "lolv";
      line("memcpy(" + vref(dst) + ", " + vref(src) + ", (size_t)(" +
           vref(dst) + "_n) * sizeof(" + ty + "));");
      return;
    }
    // Mixed element-wise copy.
    std::string i = temp();
    open_block("for (long long " + i + " = 0; " + i + " < " + vref(dst) +
               "_n; ++" + i + ")");
    CT ct;
    std::string val;
    if (src_sym) {
      std::string t = temp();
      if (src.elem == ast::TypeKind::kNumbar) {
        line("double " + t + " = lolrt_sym_load_f64(pe, " + vref(src) +
             "_off, " + vref(src) + "_n, " + i + ", " +
             (src_remote ? "1" : "0") + ");");
        ct = CT::kF64;
      } else {
        line("long long " + t + " = lolrt_sym_load_i64(pe, " + vref(src) +
             "_off, " + vref(src) + "_n, " + i + ", " +
             (src_remote ? "1" : "0") + ");");
        ct = CT::kI64;
      }
      val = t;
    } else {
      std::string t = temp();
      if (src.kind == VarInfo::Kind::kF64Arr) {
        line("double " + t + " = " + vref(src) + "[" + i + "];");
        ct = CT::kF64;
      } else if (src.kind == VarInfo::Kind::kI64Arr) {
        line("long long " + t + " = " + vref(src) + "[" + i + "];");
        ct = CT::kI64;
      } else {
        line("lolv " + t + " = " + vref(src) + "[" + i + "];");
        ct = CT::kLolv;
      }
      val = t;
    }
    store_element(dst, dst_remote, i, val, ct, a.loc);
    close_block();
  }

  void emit_orly(const ast::ORlyStmt& s) {
    open_block("if (lolrt_truthy(lol_it))");
    emit_scoped_body(s.ya_rly);
    if (s.mebbe.empty() && s.no_wai.empty()) {
      close_block();
      return;
    }
    // else branch(es).
    std::size_t open_count = 1;
    for (const auto& [cond, body] : s.mebbe) {
      close_block("} else {");
      indent_ += "  ";
      ++open_count;
      CT ct;
      std::string atom = emit_expr(*cond, ct);
      line("lol_it = " + box(atom, ct) + ";");
      open_block("if (lolrt_truthy(lol_it))");
      emit_scoped_body(body);
    }
    if (!s.no_wai.empty()) {
      // `} else {` closes the previous branch's brace and opens this one:
      // net nesting is unchanged, so open_count must NOT grow here (it
      // did once, which made every NO WAI emit one `}` too many and
      // crash the indent bookkeeping).
      close_block("} else {");
      indent_ += "  ";
      emit_scoped_body(s.no_wai);
    }
    for (std::size_t i = 0; i < open_count; ++i) close_block();
  }

  void emit_wtf(const ast::WtfStmt& s) {
    open_block("");
    std::string subj = temp();
    line("lolv " + subj + " = lol_it;");
    std::string sel = temp();
    line("int " + sel + " = " + std::to_string(s.cases.size()) + ";");
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      CT ct;
      std::string lit = emit_expr(*s.cases[i].literal, ct);
      open_block("if (" + sel + " == " + std::to_string(s.cases.size()) +
                 " && lolrt_saem(" + subj + ", " + box(lit, ct) + "))");
      line(sel + " = " + std::to_string(i) + ";");
      close_block();
    }
    break_stack_.push_back(BreakCtx{txt_depth_});
    open_block("switch (" + sel + ")");
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      line("case " + std::to_string(i) + ": {");
      indent_ += "  ";
      emit_scoped_body(s.cases[i].body);
      indent_.erase(indent_.size() - 2);
      line("} /* fallthrough */");
    }
    line("default: {");
    indent_ += "  ";
    if (s.has_default) emit_scoped_body(s.default_body);
    line("break;");
    indent_.erase(indent_.size() - 2);
    line("}");
    close_block();
    break_stack_.pop_back();
    close_block();
  }

  void emit_loop(const ast::LoopStmt& s) {
    open_block("");
    Scope loop_scope;
    loop_scope.parent = scope_;
    scope_ = &loop_scope;

    std::string var_name;
    if (s.update != ast::LoopUpdate::kNone) {
      VarInfo info;
      info.kind = VarInfo::Kind::kDyn;
      info.c_name = mangle(s.var) + "_s" + std::to_string(local_counter_++);
      loop_scope.vars[s.var] = info;
      var_name = info.c_name;
      line("lolv " + var_name + " = lolrt_numbr(0);");
    }

    break_stack_.push_back(BreakCtx{txt_depth_});
    open_block("for (;;)");
    // Charge every iteration so a condition-only (or empty-body) spin
    // still consumes budget and polls for abort — same rule as the
    // interpreter's loop head and the VM's per-instruction charge.
    line("lolrt_step(pe);");
    if (s.cond_kind == ast::LoopCond::kTil) {
      CT ct;
      std::string atom = emit_expr(*s.cond, ct);
      line("if (lolrt_truthy(" + box(atom, ct) + ")) break;");
    } else if (s.cond_kind == ast::LoopCond::kWile) {
      CT ct;
      std::string atom = emit_expr(*s.cond, ct);
      line("if (!lolrt_truthy(" + box(atom, ct) + ")) break;");
    }
    emit_scoped_body(s.body);
    // Update.
    if (s.update == ast::LoopUpdate::kUppin) {
      line(var_name + " = lolrt_binary(pe, 0, " + var_name +
           ", lolrt_numbr(1));");
    } else if (s.update == ast::LoopUpdate::kNerfin) {
      line(var_name + " = lolrt_binary(pe, 1, " + var_name +
           ", lolrt_numbr(1));");
    } else if (s.update == ast::LoopUpdate::kFunc) {
      if (!analysis_.functions.count(s.func)) {
        throw SemaError("loop update names unknown function '" + s.func + "'",
                        s.loc);
      }
      line(var_name + " = " + mangle_fn(s.func) + "(pe, " + var_name + ");");
    }
    close_block();
    break_stack_.pop_back();
    scope_ = loop_scope.parent;
    close_block();
  }

  void emit_gtfo(support::SourceLoc loc) {
    if (!break_stack_.empty()) {
      int pops = txt_depth_ - break_stack_.back().txt_depth;
      if (pops > 0) line("lolrt_bff_pop(pe, " + std::to_string(pops) + ");");
      line("break;");
      return;
    }
    if (in_function_) {
      line("lolrt_bff_reset(pe, _bff0);");
      line("return lolrt_noob();");
      return;
    }
    throw SemaError("GTFO outside loop/switch/function", loc);
  }

  void emit_scoped_body(const ast::StmtList& body) {
    Scope scope;
    scope.parent = scope_;
    scope_ = &scope;
    emit_body(body, false);
    scope_ = scope.parent;
  }

  const ast::Program& prog_;
  const sema::Analysis& analysis_;
  EmitOptions opts_;

  Scope globals_;
  std::vector<std::string> global_order_;
  Scope* scope_ = nullptr;
  bool in_function_ = false;
  int txt_depth_ = 0;
  int temp_counter_ = 0;
  int local_counter_ = 0;
  std::vector<BreakCtx> break_stack_;
};

}  // namespace

std::string emit_c(const ast::Program& program,
                   const sema::Analysis& analysis, const EmitOptions& opts) {
  return Emitter(program, analysis, opts).run();
}

}  // namespace lol::codegen

#include "codegen/jit_backend.hpp"

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "codegen/jit_emitter.hpp"
#include "codegen/single_flight.hpp"
#include "obs/metrics.hpp"
#include "vm/vm.hpp"

namespace lol::codegen {

namespace {

/// Build outcome carried through the single-flight cache: failed builds
/// keep the diagnostic so every waiter reports the same error.
struct JitBuild {
  std::shared_ptr<const JitProgram> prog;
  std::string error;
};

/// Same capacity rationale as the native object cache: daemon clients
/// choose sources, so the emitted-code map must be bounded. Eviction only
/// drops the cache's reference — in-flight runs and JitSlot memos hold
/// the shared_ptr, and the ExecMem unmaps when the last one releases.
SingleFlight<JitBuild>& jit_cache() {
  static auto* c = new SingleFlight<JitBuild>(64);
  return *c;
}

struct JitMetrics {
  obs::Counter& compiles;
  obs::Histogram& compile_ms;
  obs::Counter& spec_ops;
  obs::Counter& deopts;
  JitMetrics()
      : compiles(obs::Registry::global().counter(
            "lol_jit_compiles_total",
            "Bytecode-to-x86-64 JIT compilations (cache misses)")),
        compile_ms(obs::Registry::global().histogram(
            "lol_jit_compile_ms", "JIT compile latency (emit + map), ms",
            {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 25.0, 100.0})),
        spec_ops(obs::Registry::global().counter(
            "lol_jit_specialized_ops_total",
            "Bytecode ops retired by the type-specialized JIT tier")),
        deopts(obs::Registry::global().counter(
            "lol_jit_deopts_total",
            "Specialized-region guard failures (fell back to the generic "
            "call-threaded tier)")) {}
};

JitMetrics& jit_metrics() {
  static JitMetrics m;
  return m;
}

}  // namespace

bool jit_available() {
#if !defined(__x86_64__)
  return false;
#else
  static const bool ok = [] {
    const char* env = std::getenv("LOL_JIT");
    if (env != nullptr && env[0] == '0' && env[1] == '\0') return false;
    return ExecMem::supported();
  }();
  return ok;
#endif
}

bool jit_spec_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("LOL_JIT_SPEC");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return on;
}

namespace {

bool jit_dump_enabled() {
  const char* env = std::getenv("LOL_JIT_DUMP");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

}  // namespace

std::shared_ptr<const JitProgram> JitProgram::get_or_build(
    std::shared_ptr<const vm::Chunk> chunk, std::string* error,
    std::optional<bool> specialize) {
  if (!jit_available()) {
    if (error != nullptr) {
      *error = "JIT backend unavailable on this host (needs x86-64, mmap "
               "PROT_EXEC, LOL_JIT != 0)";
    }
    return nullptr;
  }
  JitEmitOptions opts;
  opts.specialize = specialize.value_or(jit_spec_enabled());
  std::string key = chunk_cache_key(*chunk);
  key.push_back(opts.specialize ? 1 : 0);
  JitBuild built = jit_cache().get_or_build(
      key,
      [&]() -> JitBuild {
        JitBuild b;
        const auto t0 = std::chrono::steady_clock::now();
        std::string dump;
        if (jit_dump_enabled()) opts.dump = &dump;
        std::vector<std::uint8_t> code;
        JitEmitInfo info;
        if (!emit_chunk_x86_64(*chunk, opts, &code, &b.error, &info)) {
          return b;
        }
        auto prog = std::shared_ptr<JitProgram>(new JitProgram());
        prog->chunk_ = chunk;
        prog->info_ = info;
        if (!prog->mem_.map_and_seal(code.data(), code.size(), &b.error)) {
          return b;
        }
        if (opts.dump != nullptr) {
          std::fprintf(stderr, "%s", dump.c_str());
          std::fflush(stderr);
        }
        b.prog = std::move(prog);
        jit_metrics().compiles.inc();
        jit_metrics().compile_ms.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return b;
      },
      [](const JitBuild& b) { return b.prog != nullptr; });
  if (built.prog == nullptr && error != nullptr) {
    *error = built.error.empty() ? "JIT build failed" : built.error;
  }
  return built.prog;
}

namespace {

/// The r13 block emitted code addresses: header plus the spill bank,
/// contiguous so bank displacements are env-relative constants.
struct SpecFrame {
  JitSpecEnv env;
  std::uint64_t bank[kJitSpecMaxBank] = {};
};
static_assert(offsetof(SpecFrame, bank) == kJitEnvBankOffset);

}  // namespace

void JitProgram::run_pe(rt::ExecContext& ctx) const {
  vm::Vm vm(*chunk_, ctx);
  vm.reset_for_run();
  detail::jit_pending() = nullptr;
  SpecFrame frame;
  frame.env.ctx = &ctx;
  frame.env.me = ctx.pe->id();
  frame.env.n_pes = ctx.pe->n_pes();
  auto entry =
      reinterpret_cast<JitEntryFn>(const_cast<void*>(mem_.base()));
  entry(&vm, &frame.env);
  if (frame.env.spec_ops != 0) jit_metrics().spec_ops.inc(frame.env.spec_ops);
  if (frame.env.deopts != 0) jit_metrics().deopts.inc(frame.env.deopts);
  if (detail::jit_pending() != nullptr) {
    std::exception_ptr e = detail::jit_pending();
    detail::jit_pending() = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace lol::codegen

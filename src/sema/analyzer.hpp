// Semantic analysis.
//
// LOLCODE is dynamically typed, so most type checking happens at run time;
// sema's job is the static structure:
//   * function table (two-pass so calls may precede definitions), arity
//     checks, duplicate-definition checks
//   * the symmetric-object registry: every `WE HAS A` declaration gets a
//     stable slot id (program order) so all PEs allocate identically, and
//     every `IM SHARIN IT` clause gets a global lock id (paper Table II)
//   * placement rules: symmetric declarations must be top-level,
//     straight-line code (SPMD allocation must not diverge across PEs)
//   * statement legality: GTFO only inside loop/switch/function, FOUND YR
//     only inside functions, symmetric element types must be fixed-width
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.hpp"
#include "support/error.hpp"

namespace lol::sema {

/// A resolved user function.
struct FuncInfo {
  const ast::FuncDefStmt* def = nullptr;
};

/// A resolved symmetric (PGAS) object from a `WE HAS A` declaration.
struct SymInfo {
  const ast::VarDeclStmt* decl = nullptr;
  int slot = -1;     // dense program-order index; identical on all PEs
  int lock_id = -1;  // global lock id when IM SHARIN IT, else -1
};

/// The result of analyzing one program. Owns nothing; borrows the AST.
struct Analysis {
  std::unordered_map<std::string, FuncInfo> functions;
  std::vector<SymInfo> symmetric;  // in declaration order
  std::unordered_map<const ast::VarDeclStmt*, int> sym_slot_of_decl;
  int lock_count = 0;

  [[nodiscard]] const SymInfo* sym_for_decl(
      const ast::VarDeclStmt* decl) const {
    auto it = sym_slot_of_decl.find(decl);
    if (it == sym_slot_of_decl.end()) return nullptr;
    return &symmetric[static_cast<std::size_t>(it->second)];
  }
};

/// Analyzes `program`. Throws support::SemaError on the first violation.
/// The returned Analysis borrows `program`, which must outlive it.
Analysis analyze(const ast::Program& program);

}  // namespace lol::sema

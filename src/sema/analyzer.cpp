#include "sema/analyzer.hpp"

namespace lol::sema {

using support::SemaError;

namespace {

/// Walk context tracking the statically-known nesting.
struct Context {
  bool in_function = false;
  int loop_depth = 0;
  int switch_depth = 0;
  bool in_control = false;  // inside any conditional/loop/switch/txt body
};

class Checker {
 public:
  explicit Checker(const ast::Program& prog) : prog_(prog) {}

  Analysis run() {
    collect_functions(prog_.body);
    Context ctx;
    check_body(prog_.body, ctx, /*top_level=*/true);
    return std::move(out_);
  }

 private:
  void collect_functions(const ast::StmtList& body) {
    for (const auto& s : body) {
      if (s->kind != ast::StmtKind::kFuncDef) continue;
      const auto& f = static_cast<const ast::FuncDefStmt&>(*s);
      if (out_.functions.count(f.name)) {
        throw SemaError("function '" + f.name + "' is defined twice", f.loc);
      }
      for (std::size_t i = 0; i < f.params.size(); ++i) {
        for (std::size_t j = i + 1; j < f.params.size(); ++j) {
          if (f.params[i] == f.params[j]) {
            throw SemaError("function '" + f.name +
                                "' repeats parameter '" + f.params[i] + "'",
                            f.loc);
          }
        }
      }
      out_.functions[f.name] = FuncInfo{&f};
    }
  }

  void check_body(const ast::StmtList& body, Context ctx, bool top_level) {
    for (const auto& s : body) check_stmt(*s, ctx, top_level);
  }

  void check_stmt(const ast::Stmt& s, Context ctx, bool top_level) {
    switch (s.kind) {
      case ast::StmtKind::kVarDecl: {
        const auto& d = static_cast<const ast::VarDeclStmt&>(s);
        check_decl(d, ctx, top_level);
        return;
      }
      case ast::StmtKind::kAssign: {
        const auto& a = static_cast<const ast::AssignStmt&>(s);
        check_expr(*a.target, ctx);
        check_expr(*a.value, ctx);
        return;
      }
      case ast::StmtKind::kExpr:
        check_expr(*static_cast<const ast::ExprStmt&>(s).expr, ctx);
        return;
      case ast::StmtKind::kVisible: {
        const auto& v = static_cast<const ast::VisibleStmt&>(s);
        for (const auto& a : v.args) check_expr(*a, ctx);
        return;
      }
      case ast::StmtKind::kGimmeh:
        check_expr(*static_cast<const ast::GimmehStmt&>(s).target, ctx);
        return;
      case ast::StmtKind::kCastTo:
        check_expr(*static_cast<const ast::CastToStmt&>(s).target, ctx);
        return;
      case ast::StmtKind::kORly: {
        const auto& o = static_cast<const ast::ORlyStmt&>(s);
        Context inner = ctx;
        inner.in_control = true;
        check_body(o.ya_rly, inner, false);
        for (const auto& [cond, body] : o.mebbe) {
          check_expr(*cond, ctx);
          check_body(body, inner, false);
        }
        check_body(o.no_wai, inner, false);
        return;
      }
      case ast::StmtKind::kWtf: {
        const auto& w = static_cast<const ast::WtfStmt&>(s);
        Context inner = ctx;
        inner.in_control = true;
        ++inner.switch_depth;
        for (const auto& c : w.cases) {
          check_expr(*c.literal, ctx);
          check_body(c.body, inner, false);
        }
        check_body(w.default_body, inner, false);
        return;
      }
      case ast::StmtKind::kLoop: {
        const auto& l = static_cast<const ast::LoopStmt&>(s);
        if (l.update == ast::LoopUpdate::kFunc &&
            !out_.functions.count(l.func)) {
          throw SemaError("loop update names unknown function '" + l.func +
                              "'",
                          l.loc);
        }
        if (l.cond) check_expr(*l.cond, ctx);
        Context inner = ctx;
        inner.in_control = true;
        ++inner.loop_depth;
        check_body(l.body, inner, false);
        return;
      }
      case ast::StmtKind::kGtfo:
        if (ctx.loop_depth == 0 && ctx.switch_depth == 0 &&
            !ctx.in_function) {
          throw SemaError(
              "GTFO must appear inside a loop, a WTF? block, or a function",
              s.loc);
        }
        return;
      case ast::StmtKind::kFoundYr:
        if (!ctx.in_function) {
          throw SemaError("FOUND YR is only valid inside a function", s.loc);
        }
        check_expr(*static_cast<const ast::FoundYrStmt&>(s).value, ctx);
        return;
      case ast::StmtKind::kFuncDef: {
        const auto& f = static_cast<const ast::FuncDefStmt&>(s);
        if (ctx.in_function || ctx.in_control) {
          throw SemaError("functions must be defined at the top level",
                          f.loc);
        }
        Context inner;
        inner.in_function = true;
        check_body(f.body, inner, false);
        return;
      }
      case ast::StmtKind::kCanHas:
        return;
      case ast::StmtKind::kHugz:
        return;
      case ast::StmtKind::kLock: {
        const auto& l = static_cast<const ast::LockStmt&>(s);
        check_expr(*l.target, ctx);
        return;
      }
      case ast::StmtKind::kTxt: {
        const auto& t = static_cast<const ast::TxtStmt&>(s);
        check_expr(*t.target_pe, ctx);
        Context inner = ctx;
        inner.in_control = true;
        check_body(t.body, inner, false);
        return;
      }
    }
  }

  void check_decl(const ast::VarDeclStmt& d, Context ctx, bool top_level) {
    if (d.sharin && d.scope != ast::DeclScope::kSymmetric) {
      throw SemaError(
          "'IM SHARIN IT' requires a symmetric declaration (WE HAS A)",
          d.loc);
    }
    if (d.is_array && !d.array_size) {
      throw SemaError("array declaration needs a size ('AN THAR IZ n')",
                      d.loc);
    }
    if (d.init) check_expr(*d.init, ctx);
    if (d.array_size) check_expr(*d.array_size, ctx);
    if (d.scope != ast::DeclScope::kSymmetric) return;

    // Symmetric objects: SPMD allocation must be collective and identical
    // on all PEs, so the declaration must be top-level straight-line code.
    if (!top_level || ctx.in_control || ctx.in_function) {
      throw SemaError(
          "symmetric declarations (WE HAS A) must appear at the top level, "
          "outside loops/conditionals/functions: every PE must execute them "
          "in the same order",
          d.loc);
    }
    ast::TypeKind ty = d.declared_type.value_or(ast::TypeKind::kNumbr);
    if (!d.declared_type && !d.is_array) {
      // `WE HAS A x AN IM SHARIN IT` without a type: the paper's §VI.B
      // fragment writes `WE HAS A x ITZ A NUMBR`; require a type clause so
      // the symmetric layout is fixed.
      throw SemaError(
          "symmetric variable '" + d.name +
              "' needs a type clause (ITZ [SRSLY] A NUMBR/NUMBAR/TROOF)",
          d.loc);
    }
    if (ty != ast::TypeKind::kNumbr && ty != ast::TypeKind::kNumbar &&
        ty != ast::TypeKind::kTroof) {
      throw SemaError(
          "symmetric objects must have a fixed-width type (NUMBR, NUMBAR or "
          "TROOF); '" +
              std::string(ast::type_name(ty)) +
              "' cannot live in the symmetric heap",
          d.loc);
    }
    if (d.is_array && d.init) {
      throw SemaError("symmetric arrays cannot have an ITZ initializer",
                      d.loc);
    }
    SymInfo info;
    info.decl = &d;
    info.slot = static_cast<int>(out_.symmetric.size());
    if (d.sharin) info.lock_id = out_.lock_count++;
    out_.sym_slot_of_decl[&d] = info.slot;
    out_.symmetric.push_back(info);
  }

  void check_expr(const ast::Expr& e, Context ctx) {
    switch (e.kind) {
      case ast::ExprKind::kCall: {
        const auto& c = static_cast<const ast::CallExpr&>(e);
        auto it = out_.functions.find(c.callee);
        if (it == out_.functions.end()) {
          throw SemaError("call to unknown function '" + c.callee + "'",
                          c.loc);
        }
        if (it->second.def->params.size() != c.args.size()) {
          throw SemaError(
              "function '" + c.callee + "' takes " +
                  std::to_string(it->second.def->params.size()) +
                  " argument(s) but is called with " +
                  std::to_string(c.args.size()),
              c.loc);
        }
        for (const auto& a : c.args) check_expr(*a, ctx);
        return;
      }
      case ast::ExprKind::kBinary: {
        const auto& b = static_cast<const ast::BinaryExpr&>(e);
        check_expr(*b.lhs, ctx);
        check_expr(*b.rhs, ctx);
        return;
      }
      case ast::ExprKind::kNary: {
        const auto& n = static_cast<const ast::NaryExpr&>(e);
        for (const auto& o : n.operands) check_expr(*o, ctx);
        return;
      }
      case ast::ExprKind::kUnary:
        check_expr(*static_cast<const ast::UnaryExpr&>(e).operand, ctx);
        return;
      case ast::ExprKind::kCast:
        check_expr(*static_cast<const ast::CastExpr&>(e).value, ctx);
        return;
      case ast::ExprKind::kIndex: {
        const auto& i = static_cast<const ast::IndexExpr&>(e);
        check_expr(*i.base, ctx);
        check_expr(*i.index, ctx);
        return;
      }
      case ast::ExprKind::kSrsRef:
        check_expr(*static_cast<const ast::SrsRef&>(e).name_expr, ctx);
        return;
      default:
        return;  // leaves
    }
  }

  const ast::Program& prog_;
  Analysis out_;
};

}  // namespace

Analysis analyze(const ast::Program& program) {
  return Checker(program).run();
}

}  // namespace lol::sema

#include "lex/token.hpp"

namespace lol::lex {

std::string_view tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kEof:
      return "end of input";
    case TokKind::kNewline:
      return "end of line";
    case TokKind::kIdentifier:
      return "identifier";
    case TokKind::kKeyword:
      return "keyword";
    case TokKind::kNumbr:
      return "NUMBR literal";
    case TokKind::kNumbar:
      return "NUMBAR literal";
    case TokKind::kYarn:
      return "YARN literal";
    case TokKind::kTickZ:
      return "'Z";
    case TokKind::kQuestion:
      return "?";
    case TokKind::kBang:
      return "!";
  }
  return "token";
}

std::string Token::describe() const {
  switch (kind) {
    case TokKind::kKeyword:
      return "'" + std::string(keyword_spelling(keyword)) + "'";
    case TokKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokKind::kNumbr:
      return "NUMBR literal " + std::to_string(numbr);
    case TokKind::kNumbar:
      return "NUMBAR literal";
    case TokKind::kYarn:
      return "YARN literal";
    default:
      return std::string(tok_kind_name(kind));
  }
}

}  // namespace lol::lex

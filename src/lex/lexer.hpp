// The LOLCODE lexer.
//
// Phase 1 scans characters into raw tokens (words, literals, separators),
// handling YARN escapes/interpolation, BTW / OBTW..TLDR comments, and
// `...`/`…` line continuations. Phase 2 merges consecutive words into
// multi-word keyword tokens with longest-phrase matching.
#pragma once

#include <string_view>
#include <vector>

#include "lex/token.hpp"
#include "support/error.hpp"

namespace lol::lex {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  /// Tokenizes the whole buffer. Throws support::LexError on malformed
  /// input (unterminated YARN, bad escape, stray character). The returned
  /// stream always ends with a kNewline followed by kEof so the parser
  /// never needs to special-case the last statement.
  std::vector<Token> lex();

 private:
  struct Raw {
    TokKind kind;
    std::string text;  // word spelling / identifier
    std::int64_t numbr = 0;
    double numbar = 0.0;
    std::vector<YarnSegment> segments;
    support::SourceLoc loc;
  };

  // Phase 1.
  std::vector<Raw> scan_raw();
  Raw scan_yarn(support::SourceLoc loc);
  Raw scan_number(support::SourceLoc loc);
  void skip_line_comment();
  void skip_block_comment(support::SourceLoc loc);
  void handle_continuation(support::SourceLoc loc);

  // Phase 2.
  static std::vector<Token> merge_phrases(std::vector<Raw> raw);

  // Character cursor helpers.
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance();
  [[nodiscard]] support::SourceLoc here() const {
    return {line_, col_, static_cast<std::uint32_t>(pos_)};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

/// Convenience: tokenize `source` in one call.
std::vector<Token> tokenize(std::string_view source);

}  // namespace lol::lex

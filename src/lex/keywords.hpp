// The LOLCODE keyword inventory: LOLCODE-1.2 plus the parallel/distributed
// extensions of Richie & Ross 2017 (paper Tables I, II and III).
//
// LOLCODE keywords are *phrases* — sequences of upper-case words such as
// "I HAS A" or "IM SRSLY MESIN WIF". The lexer scans words and then merges
// them into keyword tokens with longest-phrase matching (see PhraseTrie).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace lol::lex {

/// Every keyword phrase recognised by the frontend.
enum class Keyword {
  // Program structure.
  kHai,        // HAI           — begins a program
  kKthxbye,    // KTHXBYE       — ends a program
  kCanHas,     // CAN HAS       — library import (CAN HAS STDIO?)

  // IO.
  kVisible,    // VISIBLE       — print to stdout
  kInvisible,  // INVISIBLE     — print to stderr
  kGimmeh,     // GIMMEH        — read line from stdin

  // Declarations.
  kIHasA,           // I HAS A            — private variable declaration
  kWeHasA,          // WE HAS A           — symmetric (PGAS) declaration
  kItz,             // ITZ                — initializer clause
  kItzA,            // ITZ A              — dynamic-typed clause
  kItzSrslyA,       // ITZ SRSLY A        — statically typed clause (ext.)
  kItzLotzA,        // ITZ LOTZ A         — array clause (ext.)
  kItzSrslyLotzA,   // ITZ SRSLY LOTZ A   — statically typed array (ext.)
  kTharIz,          // THAR IZ            — array size clause (ext.)
  kImSharinIt,      // IM SHARIN IT       — attach a global lock (ext.)
  kAn,              // AN                 — clause/operand separator

  // Assignment and casts.
  kR,        // R          — assignment
  kIsNowA,   // IS NOW A   — in-place cast
  kMaek,     // MAEK       — cast expression
  kA,        // A          — type introducer in MAEK
  kSrs,      // SRS        — string-as-identifier indirection
  kIt,       // IT         — the implicit result variable

  // Arithmetic (Table I).
  kSumOf,       // SUM OF
  kDiffOf,      // DIFF OF
  kProduktOf,   // PRODUKT OF
  kQuoshuntOf,  // QUOSHUNT OF
  kModOf,       // MOD OF
  kBiggrOf,     // BIGGR OF   — max (LOLCODE-1.2)
  kSmallrOf,    // SMALLR OF  — min (LOLCODE-1.2)

  // Comparison (Table I; BIGGER/SMALLR are the paper's spellings for
  // strict greater-/less-than).
  kBothSaem,  // BOTH SAEM
  kDiffrint,  // DIFFRINT
  kBigger,    // BIGGER     — greater-than (paper ext.)
  kSmallr,    // SMALLR     — less-than (paper ext.)

  // Boolean.
  kBothOf,    // BOTH OF    — and
  kEitherOf,  // EITHER OF  — or
  kWonOf,     // WON OF     — xor
  kNot,       // NOT
  kAllOf,     // ALL OF ... MKAY — variadic and
  kAnyOf,     // ANY OF ... MKAY — variadic or

  // Strings.
  kSmoosh,  // SMOOSH ... MKAY — concatenation
  kMkay,    // MKAY            — variadic terminator

  // Conditionals.
  kORly,   // O RLY?
  kYaRly,  // YA RLY
  kNoWai,  // NO WAI
  kMebbe,  // MEBBE — else-if
  kOic,    // OIC

  // Switch.
  kWtf,     // WTF?
  kOmg,     // OMG literal
  kOmgwtf,  // OMGWTF — default
  kGtfo,    // GTFO — break / return NOOB

  // Loops.
  kImInYr,     // IM IN YR
  kUppin,      // UPPIN
  kNerfin,     // NERFIN
  kYr,         // YR
  kTil,        // TIL
  kWile,       // WILE
  kImOuttaYr,  // IM OUTTA YR

  // Functions.
  kHowIzI,    // HOW IZ I
  kIfUSaySo,  // IF U SAY SO
  kIIz,       // I IZ name YR args MKAY — call
  kFoundYr,   // FOUND YR — return

  // Parallel extensions (Table II).
  kMe,               // ME                  — executing PE id
  kMahFrenz,         // MAH FRENZ           — total PE count
  kMah,              // MAH                 — local address-space qualifier
  kUr,               // UR                  — remote address-space qualifier
  kHugz,             // HUGZ                — collective barrier
  kTxtMahBff,        // TXT MAH BFF         — thread predication
  kAnStuff,          // AN STUFF            — begin predicated block
  kTtyl,             // TTYL                — end predicated block
  kImSrslyMesinWif,  // IM SRSLY MESIN WIF  — blocking lock acquire
  kImMesinWif,       // IM MESIN WIF        — non-blocking trylock
  kDunMesinWif,      // DUN MESIN WIF       — lock release

  // Types (singular and plural forms; plural appears in LOTZ A NUMBRS).
  kNumbr,
  kNumbrs,
  kNumbar,
  kNumbars,
  kYarn,
  kYarns,
  kTroof,
  kTroofs,
  kNoob,

  // Literals.
  kWin,   // WIN  — TROOF true
  kFail,  // FAIL — TROOF false

  // Math/RNG extensions (Table III).
  kWhatevr,    // WHATEVR     — random NUMBR
  kWhatevar,   // WHATEVAR    — random NUMBAR
  kSquarOf,    // SQUAR OF    — x*x
  kUnsquarOf,  // UNSQUAR OF  — sqrt(x)
  kFlipOf,     // FLIP OF     — 1/x
};

/// Canonical spelling of a keyword ("I HAS A"), for diagnostics and for
/// the AST pretty-printer.
std::string_view keyword_spelling(Keyword k);

/// The full phrase inventory as (spelling, keyword) pairs.
const std::vector<std::pair<std::string_view, Keyword>>& keyword_phrases();

/// Longest-match phrase recognizer over a window of scanned words.
/// `words` is the lookahead window starting at the current word. Returns
/// the matched keyword and how many words it consumed, or nullopt when the
/// current word starts no keyword phrase.
std::optional<std::pair<Keyword, std::size_t>> match_keyword_phrase(
    const std::vector<std::string_view>& words);

}  // namespace lol::lex

#include "lex/lexer.hpp"

#include <cctype>

#include "support/string_util.hpp"

namespace lol::lex {

namespace {

bool is_word_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skip_line_comment() {
  while (!at_end() && peek() != '\n') advance();
}

void Lexer::skip_block_comment(support::SourceLoc loc) {
  // Scan forward for the standalone word TLDR, swallowing newlines.
  while (!at_end()) {
    if (is_word_start(peek())) {
      std::string word;
      while (!at_end() && is_word_char(peek())) word += advance();
      if (word == "TLDR") return;
    } else {
      advance();
    }
  }
  throw support::LexError("OBTW comment is never closed by TLDR", loc);
}

void Lexer::handle_continuation(support::SourceLoc loc) {
  // Swallow trailing whitespace, an optional BTW comment, and the newline.
  while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) {
    advance();
  }
  if (!at_end() && is_word_start(peek())) {
    std::size_t save_pos = pos_;
    std::uint32_t save_line = line_, save_col = col_;
    std::string word;
    while (!at_end() && is_word_char(peek())) word += advance();
    if (word == "BTW") {
      skip_line_comment();
    } else {
      pos_ = save_pos;
      line_ = save_line;
      col_ = save_col;
      throw support::LexError(
          "line continuation '...' must end the line (found '" + word + "')",
          loc);
    }
  }
  if (at_end()) return;
  if (peek() != '\n') {
    throw support::LexError("line continuation '...' must end the line", loc);
  }
  advance();  // swallow the newline: the statement continues
}

Lexer::Raw Lexer::scan_yarn(support::SourceLoc loc) {
  Raw out{TokKind::kYarn, {}, 0, 0.0, {}, loc};
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.segments.push_back({false, current});
      current.clear();
    }
  };
  while (true) {
    if (at_end() || peek() == '\n') {
      throw support::LexError("unterminated YARN literal", loc);
    }
    char c = advance();
    if (c == '"') break;
    if (c != ':') {
      current += c;
      continue;
    }
    if (at_end()) throw support::LexError("unterminated YARN escape", loc);
    char e = advance();
    switch (e) {
      case ')':
        current += '\n';
        break;
      case '>':
        current += '\t';
        break;
      case 'o':
        current += '\a';
        break;
      case '"':
        current += '"';
        break;
      case ':':
        current += ':';
        break;
      case '{': {
        std::string name;
        while (!at_end() && peek() != '}' && peek() != '\n') name += advance();
        if (at_end() || peek() != '}') {
          throw support::LexError("unterminated :{var} interpolation", loc);
        }
        advance();  // '}'
        if (name.empty() || !is_word_start(name[0])) {
          throw support::LexError(
              "bad variable name in :{var} interpolation: '" + name + "'",
              loc);
        }
        flush();
        out.segments.push_back({true, name});
        break;
      }
      case '(': {
        // :(<hex>) — Unicode code point, encoded as UTF-8.
        std::string hex;
        while (!at_end() && peek() != ')' && peek() != '\n') hex += advance();
        if (at_end() || peek() != ')') {
          throw support::LexError("unterminated :(<hex>) escape", loc);
        }
        advance();  // ')'
        char32_t cp = 0;
        if (hex.empty()) throw support::LexError("empty :(<hex>) escape", loc);
        for (char h : hex) {
          int v;
          if (h >= '0' && h <= '9')
            v = h - '0';
          else if (h >= 'a' && h <= 'f')
            v = h - 'a' + 10;
          else if (h >= 'A' && h <= 'F')
            v = h - 'A' + 10;
          else
            throw support::LexError("bad hex digit in :(<hex>) escape", loc);
          cp = cp * 16 + static_cast<char32_t>(v);
        }
        // UTF-8 encode.
        if (cp < 0x80) {
          current += static_cast<char>(cp);
        } else if (cp < 0x800) {
          current += static_cast<char>(0xC0 | (cp >> 6));
          current += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          current += static_cast<char>(0xE0 | (cp >> 12));
          current += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          current += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          current += static_cast<char>(0xF0 | (cp >> 18));
          current += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          current += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          current += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        throw support::LexError(std::string("unknown YARN escape ':") + e +
                                    "'",
                                loc);
    }
  }
  flush();
  if (out.segments.empty()) out.segments.push_back({false, ""});
  return out;
}

Lexer::Raw Lexer::scan_number(support::SourceLoc loc) {
  std::string digits;
  if (peek() == '-') digits += advance();
  while (!at_end() && is_digit(peek())) digits += advance();
  bool is_float = false;
  if (!at_end() && peek() == '.' && is_digit(peek(1))) {
    is_float = true;
    digits += advance();  // '.'
    while (!at_end() && is_digit(peek())) digits += advance();
  }
  Raw out{is_float ? TokKind::kNumbar : TokKind::kNumbr, {}, 0, 0.0, {}, loc};
  if (is_float) {
    auto v = support::parse_numbar(digits);
    if (!v) throw support::LexError("bad NUMBAR literal '" + digits + "'", loc);
    out.numbar = *v;
  } else {
    auto v = support::parse_numbr(digits);
    if (!v) throw support::LexError("bad NUMBR literal '" + digits + "'", loc);
    out.numbr = *v;
  }
  return out;
}

std::vector<Lexer::Raw> Lexer::scan_raw() {
  std::vector<Raw> out;
  while (!at_end()) {
    support::SourceLoc loc = here();
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
      continue;
    }
    if (c == '\n' || c == ',') {
      advance();
      out.push_back({TokKind::kNewline, {}, 0, 0.0, {}, loc});
      continue;
    }
    if (c == '?') {
      advance();
      out.push_back({TokKind::kQuestion, {}, 0, 0.0, {}, loc});
      continue;
    }
    if (c == '!') {
      advance();
      out.push_back({TokKind::kBang, {}, 0, 0.0, {}, loc});
      continue;
    }
    if (c == '"') {
      advance();
      out.push_back(scan_yarn(loc));
      continue;
    }
    if (is_digit(c) || (c == '-' && is_digit(peek(1)))) {
      out.push_back(scan_number(loc));
      continue;
    }
    if (c == '\'') {
      if (peek(1) == 'Z' && !is_word_char(peek(2))) {
        advance();
        advance();
        out.push_back({TokKind::kTickZ, {}, 0, 0.0, {}, loc});
        continue;
      }
      throw support::LexError("stray ' (expected 'Z array index)", loc);
    }
    if (c == '.') {
      if (peek(1) == '.' && peek(2) == '.') {
        advance();
        advance();
        advance();
        handle_continuation(loc);
        continue;
      }
      throw support::LexError("stray '.' (expected '...' continuation)", loc);
    }
    // UTF-8 ellipsis '…' (E2 80 A6).
    if (static_cast<unsigned char>(c) == 0xE2 &&
        static_cast<unsigned char>(peek(1)) == 0x80 &&
        static_cast<unsigned char>(peek(2)) == 0xA6) {
      advance();
      advance();
      advance();
      handle_continuation(loc);
      continue;
    }
    if (is_word_start(c)) {
      std::string word;
      while (!at_end() && is_word_char(peek())) word += advance();
      if (word == "BTW") {
        skip_line_comment();
        continue;
      }
      if (word == "OBTW") {
        skip_block_comment(loc);
        continue;
      }
      out.push_back({TokKind::kIdentifier, std::move(word), 0, 0.0, {}, loc});
      continue;
    }
    throw support::LexError(std::string("unexpected character '") + c + "'",
                            loc);
  }
  return out;
}

std::vector<Token> Lexer::merge_phrases(std::vector<Raw> raw) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < raw.size()) {
    Raw& r = raw[i];
    if (r.kind == TokKind::kIdentifier) {
      // Build the lookahead window of consecutive words (phrases never
      // cross literals or separators). Longest phrase is four words.
      std::vector<std::string_view> window;
      for (std::size_t j = i;
           j < raw.size() && window.size() < 4 &&
           raw[j].kind == TokKind::kIdentifier;
           ++j) {
        window.push_back(raw[j].text);
      }
      if (auto m = match_keyword_phrase(window)) {
        Token t;
        t.kind = TokKind::kKeyword;
        t.keyword = m->first;
        t.loc = r.loc;
        out.push_back(std::move(t));
        i += m->second;
        continue;
      }
      Token t;
      t.kind = TokKind::kIdentifier;
      t.text = std::move(r.text);
      t.loc = r.loc;
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    Token t;
    t.kind = r.kind;
    t.numbr = r.numbr;
    t.numbar = r.numbar;
    t.segments = std::move(r.segments);
    t.loc = r.loc;
    out.push_back(std::move(t));
    ++i;
  }
  return out;
}

std::vector<Token> Lexer::lex() {
  std::vector<Token> toks = merge_phrases(scan_raw());
  support::SourceLoc end = here();
  if (toks.empty() || toks.back().kind != TokKind::kNewline) {
    toks.push_back(Token{TokKind::kNewline, {}, "", 0, 0.0, {}, end});
  }
  toks.push_back(Token{TokKind::kEof, {}, "", 0, 0.0, {}, end});
  return toks;
}

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).lex();
}

}  // namespace lol::lex

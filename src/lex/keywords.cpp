#include "lex/keywords.hpp"

#include <map>
#include <memory>

namespace lol::lex {

const std::vector<std::pair<std::string_view, Keyword>>& keyword_phrases() {
  static const std::vector<std::pair<std::string_view, Keyword>> kPhrases = {
      {"HAI", Keyword::kHai},
      {"KTHXBYE", Keyword::kKthxbye},
      {"CAN HAS", Keyword::kCanHas},
      {"VISIBLE", Keyword::kVisible},
      {"INVISIBLE", Keyword::kInvisible},
      {"GIMMEH", Keyword::kGimmeh},
      {"I HAS A", Keyword::kIHasA},
      {"WE HAS A", Keyword::kWeHasA},
      {"ITZ", Keyword::kItz},
      {"ITZ A", Keyword::kItzA},
      {"ITZ SRSLY A", Keyword::kItzSrslyA},
      {"ITZ LOTZ A", Keyword::kItzLotzA},
      {"ITZ SRSLY LOTZ A", Keyword::kItzSrslyLotzA},
      {"THAR IZ", Keyword::kTharIz},
      {"IM SHARIN IT", Keyword::kImSharinIt},
      {"AN", Keyword::kAn},
      {"R", Keyword::kR},
      {"IS NOW A", Keyword::kIsNowA},
      {"MAEK", Keyword::kMaek},
      {"A", Keyword::kA},
      {"SRS", Keyword::kSrs},
      {"IT", Keyword::kIt},
      {"SUM OF", Keyword::kSumOf},
      {"DIFF OF", Keyword::kDiffOf},
      {"PRODUKT OF", Keyword::kProduktOf},
      {"QUOSHUNT OF", Keyword::kQuoshuntOf},
      {"MOD OF", Keyword::kModOf},
      {"BIGGR OF", Keyword::kBiggrOf},
      {"SMALLR OF", Keyword::kSmallrOf},
      {"BOTH SAEM", Keyword::kBothSaem},
      {"DIFFRINT", Keyword::kDiffrint},
      {"BIGGER", Keyword::kBigger},
      {"SMALLR", Keyword::kSmallr},
      {"BOTH OF", Keyword::kBothOf},
      {"EITHER OF", Keyword::kEitherOf},
      {"WON OF", Keyword::kWonOf},
      {"NOT", Keyword::kNot},
      {"ALL OF", Keyword::kAllOf},
      {"ANY OF", Keyword::kAnyOf},
      {"SMOOSH", Keyword::kSmoosh},
      {"MKAY", Keyword::kMkay},
      {"O RLY", Keyword::kORly},
      {"YA RLY", Keyword::kYaRly},
      {"NO WAI", Keyword::kNoWai},
      {"MEBBE", Keyword::kMebbe},
      {"OIC", Keyword::kOic},
      {"WTF", Keyword::kWtf},
      {"OMG", Keyword::kOmg},
      {"OMGWTF", Keyword::kOmgwtf},
      {"GTFO", Keyword::kGtfo},
      {"IM IN YR", Keyword::kImInYr},
      {"UPPIN", Keyword::kUppin},
      {"NERFIN", Keyword::kNerfin},
      {"YR", Keyword::kYr},
      {"TIL", Keyword::kTil},
      {"WILE", Keyword::kWile},
      {"IM OUTTA YR", Keyword::kImOuttaYr},
      {"HOW IZ I", Keyword::kHowIzI},
      {"IF U SAY SO", Keyword::kIfUSaySo},
      {"I IZ", Keyword::kIIz},
      {"FOUND YR", Keyword::kFoundYr},
      {"ME", Keyword::kMe},
      {"MAH FRENZ", Keyword::kMahFrenz},
      {"MAH", Keyword::kMah},
      {"UR", Keyword::kUr},
      {"HUGZ", Keyword::kHugz},
      {"TXT MAH BFF", Keyword::kTxtMahBff},
      {"AN STUFF", Keyword::kAnStuff},
      {"TTYL", Keyword::kTtyl},
      {"IM SRSLY MESIN WIF", Keyword::kImSrslyMesinWif},
      {"IM MESIN WIF", Keyword::kImMesinWif},
      {"DUN MESIN WIF", Keyword::kDunMesinWif},
      {"NUMBR", Keyword::kNumbr},
      {"NUMBRS", Keyword::kNumbrs},
      {"NUMBAR", Keyword::kNumbar},
      {"NUMBARS", Keyword::kNumbars},
      {"YARN", Keyword::kYarn},
      {"YARNS", Keyword::kYarns},
      {"TROOF", Keyword::kTroof},
      {"TROOFS", Keyword::kTroofs},
      {"NOOB", Keyword::kNoob},
      {"WIN", Keyword::kWin},
      {"FAIL", Keyword::kFail},
      {"WHATEVR", Keyword::kWhatevr},
      {"WHATEVAR", Keyword::kWhatevar},
      {"SQUAR OF", Keyword::kSquarOf},
      {"UNSQUAR OF", Keyword::kUnsquarOf},
      {"FLIP OF", Keyword::kFlipOf},
  };
  return kPhrases;
}

std::string_view keyword_spelling(Keyword k) {
  for (const auto& [spelling, kw] : keyword_phrases()) {
    if (kw == k) return spelling;
  }
  return "<keyword>";
}

namespace {

/// Word-level trie for longest-phrase matching.
struct TrieNode {
  std::optional<Keyword> terminal;
  std::map<std::string_view, std::unique_ptr<TrieNode>> children;
};

const TrieNode& phrase_trie() {
  static const std::unique_ptr<TrieNode> root = [] {
    auto r = std::make_unique<TrieNode>();
    for (const auto& [spelling, kw] : keyword_phrases()) {
      TrieNode* node = r.get();
      std::size_t start = 0;
      while (start <= spelling.size()) {
        std::size_t space = spelling.find(' ', start);
        std::string_view word = spelling.substr(
            start, space == std::string_view::npos ? std::string_view::npos
                                                   : space - start);
        auto it = node->children.find(word);
        if (it == node->children.end()) {
          it = node->children.emplace(word, std::make_unique<TrieNode>())
                   .first;
        }
        node = it->second.get();
        if (space == std::string_view::npos) break;
        start = space + 1;
      }
      node->terminal = kw;
    }
    return r;
  }();
  return *root;
}

}  // namespace

std::optional<std::pair<Keyword, std::size_t>> match_keyword_phrase(
    const std::vector<std::string_view>& words) {
  const TrieNode* node = &phrase_trie();
  std::optional<std::pair<Keyword, std::size_t>> best;
  for (std::size_t i = 0; i < words.size(); ++i) {
    auto it = node->children.find(words[i]);
    if (it == node->children.end()) break;
    node = it->second.get();
    if (node->terminal) best = {*node->terminal, i + 1};
  }
  return best;
}

}  // namespace lol::lex

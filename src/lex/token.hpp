// Token definitions produced by the lexer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lex/keywords.hpp"
#include "support/source_location.hpp"

namespace lol::lex {

/// Kinds of token the parser consumes.
enum class TokKind {
  kEof,
  kNewline,     // statement separator: physical newline or ','
  kIdentifier,  // a word that is not a keyword phrase
  kKeyword,
  kNumbr,   // integer literal
  kNumbar,  // floating-point literal
  kYarn,    // string literal (with interpolation segments)
  kTickZ,   // 'Z — array index marker (paper array extension)
  kQuestion,  // ? — terminates O RLY / WTF / CAN HAS
  kBang,      // ! — VISIBLE newline suppressor
};

/// Stable display name for diagnostics.
std::string_view tok_kind_name(TokKind k);

/// One piece of a YARN literal: either literal text or a `:{var}`
/// interpolation that is resolved against the environment at runtime.
struct YarnSegment {
  bool is_var = false;
  std::string text;  // literal text, or the variable name when is_var

  friend bool operator==(const YarnSegment&, const YarnSegment&) = default;
};

/// A lexed token. Exactly one of the payload fields is meaningful,
/// selected by `kind`.
struct Token {
  TokKind kind = TokKind::kEof;
  Keyword keyword{};                  // when kind == kKeyword
  std::string text;                   // identifier spelling
  std::int64_t numbr = 0;             // NUMBR literal value
  double numbar = 0.0;                // NUMBAR literal value
  std::vector<YarnSegment> segments;  // YARN literal pieces
  support::SourceLoc loc;

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
  [[nodiscard]] bool is_keyword(Keyword k) const {
    return kind == TokKind::kKeyword && keyword == k;
  }

  /// Human-readable description used in parse errors, e.g. `'SUM OF'`,
  /// `identifier 'x'`, `end of line`.
  [[nodiscard]] std::string describe() const;
};

}  // namespace lol::lex

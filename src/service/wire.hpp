// The lolserve daemon wire format: newline-delimited JSON.
//
// One request object per line in, one event object per line out. The
// codec is deliberately tiny (no external JSON dependency): a recursive
// descent parser for the subset the protocol uses plus serializers for
// the event lines. Events are correlated by job id; a job's "accepted"
// event always precedes its "done" event (the daemon holds early
// completions back until the id has been announced).
//
// Requests:
//   {"op":"submit","source":"HAI ...","name":"lab1","n_pes":4,
//    "tenant":"alice","deadline_ms":200,"max_steps":100000,
//    "heap_bytes":1048576,"backend":"vm","seed":7,"stdin":["line1"],
//    "executor":"pool","pes_per_thread":0,"barrier_radix":0,
//    "opt_level":2}
//   ("executor" picks the PE mapping: pool (default), thread, or fiber
//    for n_pes far beyond the host's cores; "barrier_radix" tunes the
//    combining-tree fan-in, < 2 = auto, results are radix-invariant;
//    "opt_level" is the optimizing middle-end level 0..2, default 2 —
//    a non-integer or out-of-range value is a protocol error)
//   {"op":"cancel","id":7}
//   {"op":"stats"}   {"op":"metrics"}   {"op":"ping"}   {"op":"shutdown"}
//
// Events:
//   {"event":"accepted","id":7,"name":"lab1","tenant":"alice"}
//   {"event":"done","id":7,"name":"lab1","tenant":"alice","status":"ok",
//    "error":"","cached":true,"queue_ms":0.1,"run_ms":1.9,
//    "trace":[{"span":"queued","start_ms":0.0,"dur_ms":0.1},...],
//    "output":["..."],"errout":["..."]}
//   (done events add "tuned":"executor=fiber ..." when the service
//    applied persisted auto-tuner knobs to the run)
//   {"event":"cancel","id":7,"ok":true}
//   {"event":"stats",...}   {"event":"pong"}   {"event":"bye"}
//   {"event":"metrics","text":"# HELP ...\n..."}  (Prometheus exposition)
//   {"event":"error","message":"..."}
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "service/job.hpp"
#include "service/service.hpp"

namespace lol::service::wire {

/// A parsed JSON value (the subset NDJSON requests need).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool is(Kind k) const { return kind == k; }
};

/// Parses one JSON document (trailing garbage is an error). Returns
/// nullopt and fills `error` on malformed input.
std::optional<Json> parse_json(std::string_view text,
                               std::string* error = nullptr);

/// JSON string escaping (quotes included in the result).
std::string quote(std::string_view s);

/// One parsed request line.
struct Request {
  enum class Op { kSubmit, kCancel, kStats, kMetrics, kPing, kShutdown };
  Op op = Op::kPing;
  Job job;        // kSubmit
  JobId id = 0;   // kCancel
};

/// Parses a request line; nullopt + `error` on malformed/unknown input.
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error);

/// Wire name of a backend ("interp" / "vm" / "native" / "jit").
[[nodiscard]] const char* backend_name(Backend b);

// -- request serializers (no trailing newline) ------------------------------
// The client-side half of the protocol: scripts, tests and a future
// `lolserve --client` build request lines with these instead of
// hand-rolling JSON. parse_request(request_line(r)) round-trips every
// field whose value survives the JSON number model (IEEE doubles: keep
// u64s below 2^53).
std::string submit_line(const Job& job);
std::string cancel_request_line(JobId id);
std::string request_line(const Request& req);

// -- line-framed socket IO (POSIX) ------------------------------------------
// The one implementation of NDJSON framing over a socket fd, shared by
// the daemon's connection loop and the lolserve --client tool.
#if !defined(_WIN32)

/// send()s the whole buffer (MSG_NOSIGNAL, EINTR-safe). False when the
/// peer is gone; callers treat that as connection teardown.
bool send_all(int fd, std::string_view data);

/// Incremental reader of newline-delimited frames from a socket.
/// next() blocks for the next line (CR stripped), returning nullopt on
/// EOF/error — or when a single line exceeds `max_line`, which also
/// sets line_too_long() so protocol servers can answer before closing.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line = 1u << 22)
      : fd_(fd), max_line_(max_line) {}

  std::optional<std::string> next();
  [[nodiscard]] bool line_too_long() const { return too_long_; }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buf_;
  bool too_long_ = false;
};

#endif  // !_WIN32

// -- event serializers (no trailing newline) --------------------------------
std::string accepted_line(JobId id, const Job& job);
std::string result_line(const JobResult& r);
std::string cancel_line(JobId id, bool ok);
std::string stats_line(const Service::Stats& s);
/// Prometheus text exposition wrapped into one NDJSON event (the
/// exposition itself is multi-line; the JSON string escapes it).
std::string metrics_line(std::string_view exposition);
std::string pong_line();
std::string bye_line();
std::string error_line(std::string_view message);

}  // namespace lol::service::wire

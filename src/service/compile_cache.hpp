// A thread-safe LRU cache of compiled programs keyed by source hash.
//
// Hundreds of concurrent submissions in a classroom are mostly the same
// handful of sources (everyone runs the lab starter, then small edits).
// Compilation (lex+parse+sema) dominates short jobs, so the service
// deduplicates it here: the first request for a source compiles it, every
// later request shares the same immutable CompiledProgram (safe — runs
// only read it; see engine_test "CompiledProgramIsReusableAcrossRuns").
// Failed compiles are cached too, so a broken source submitted in a loop
// costs one compile, not N.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/engine.hpp"

namespace lol::service {

/// 64-bit FNV-1a over the source text — the base of the cache key.
[[nodiscard]] std::uint64_t hash_source(std::string_view source);

/// The full cache key: the source hash mixed with the compile options
/// (opt level, unroll bound) and the optimizer pipeline version, via
/// opt::mix_hash. The same source submitted at -O0 and -O2 is two
/// distinct entries — folding and unrolling legitimately change step
/// counts, so the compiled artifacts are not interchangeable — and a
/// pipeline-version bump invalidates every optimized entry at once.
[[nodiscard]] std::uint64_t cache_key(std::string_view source,
                                      const CompileOptions& opts);

/// What the cache stores per source: either a shared compiled program or
/// the diagnostic the compiler produced.
struct CachedCompile {
  std::shared_ptr<const CompiledProgram> program;  // null on failure
  std::string error;  // compiler diagnostic when program == null

  [[nodiscard]] bool ok() const { return program != nullptr; }
};

class CompileCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hit_rate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// Estimated resident bytes for one cached source: the text itself
  /// plus a multiplier for the AST + analysis it expands into (ASTs are
  /// pointer-heavy, several times the source size) plus fixed entry
  /// overhead. A heuristic, not an exact measurement — its job is to
  /// make eviction pressure proportional to memory, not entry count,
  /// so one 2 MB paste can no longer cost the same as one 40-byte
  /// hello.
  [[nodiscard]] static std::size_t charged_bytes(std::size_t source_bytes) {
    return source_bytes * 8 + 512;
  }

  /// `capacity` = max cached sources (>= 1); `capacity_bytes` bounds
  /// the estimated resident footprint (0 = unbounded). Whichever limit
  /// is hit first evicts from the LRU tail, though the most recent
  /// entry always stays (an oversized source is cached until something
  /// newer arrives, not thrashed on every request).
  explicit CompileCache(std::size_t capacity = 128,
                        std::size_t capacity_bytes = 32u << 20);

  /// Releases this cache's contribution to the process-wide
  /// resident-bytes gauge (tests construct many short-lived caches).
  ~CompileCache();

  /// Returns the cached compile for `source` at `opts`, compiling at
  /// most once per (source, options) even under concurrent requests for
  /// it: the first caller publishes a future and compiles outside the
  /// lock, later callers block on that future (a hit). `hit` (optional)
  /// reports whether this call was served from cache. Optimization runs
  /// exactly here — once at insert time — so every later run of the
  /// entry, on any backend, executes the already-optimized program.
  CachedCompile get_or_compile(const std::string& source,
                               const CompileOptions& opts,
                               bool* hit = nullptr);

  /// Shorthand at the default options (-O2).
  CachedCompile get_or_compile(const std::string& source,
                               bool* hit = nullptr) {
    return get_or_compile(source, CompileOptions{}, hit);
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }

  /// Estimated resident footprint of the cached entries (charged_bytes
  /// summed over residents).
  [[nodiscard]] std::size_t resident_bytes() const;

  /// Drops every entry (stats are kept).
  void clear();

  /// Re-charges `source`'s entry against the byte budget, folding in
  /// state attached to the CompiledProgram after compilation — today the
  /// sealed JIT code memoized by a Backend::kJit run. No-op when the
  /// entry is gone, still compiling, or unchanged; may evict LRU-tail
  /// entries when the new charge pushes the cache over budget.
  void recharge(const std::string& source, const CompileOptions& opts = {});

 private:
  struct Entry {
    // Collision guard: full text + options compared on hit, so a true
    // 64-bit key collision can never hand back the wrong program.
    std::string source;
    CompileOptions opts;
    std::shared_future<CachedCompile> result;
    std::list<std::uint64_t>::iterator lru_pos;
    std::size_t bytes = 0;  // charged_bytes(source.size()) at insertion
  };

  void evict_while_over_budget_locked();

  std::size_t capacity_;
  std::size_t capacity_bytes_;
  mutable std::mutex m_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::size_t resident_bytes_ = 0;
  Stats stats_;
};

}  // namespace lol::service

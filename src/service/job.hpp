// Job and JobResult: the unit of work the execution service schedules.
//
// A Job is one student submission in the classroom-deployment story: a
// LOLCODE source plus the RunConfig-shaped knobs a multi-tenant host is
// willing to expose (PE count, backend, seed, stdin, resource limits).
// The service clamps the limits against its own caps before running.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lol::service {

/// One queued execution request.
struct Job {
  std::string name;      // reporting label ("ring.lol", "user42#7", ...)
  std::string source;    // full LOLCODE text (the compile-cache key)
  int n_pes = 1;
  Backend backend = Backend::kVm;
  std::uint64_t seed = 20170529;
  std::vector<std::string> stdin_lines;

  // Resource requests; the service clamps them to ServiceOptions caps.
  std::uint64_t max_steps = 0;     // 0 = service default
  std::size_t heap_bytes = 1 << 20;
};

/// How a job ended.
enum class JobStatus {
  kOk,            // ran to completion on every PE
  kCompileError,  // lex/parse/sema rejected the source
  kRuntimeError,  // a PE raised a runtime error
  kStepLimit,     // killed: a PE exhausted its step budget
  kRejected,      // never ran: bounded queue was full (kReject policy)
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kCompileError: return "compile-error";
    case JobStatus::kRuntimeError: return "runtime-error";
    case JobStatus::kStepLimit: return "step-limit";
    case JobStatus::kRejected: return "rejected";
  }
  return "?";
}

/// Outcome delivered through the future returned by Service::submit.
struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kOk;
  std::string error;                   // first error (empty on kOk)
  std::vector<std::string> pe_output;  // per-PE stdout (empty unless run)
  std::vector<std::string> pe_errout;  // per-PE stderr
  bool compile_cache_hit = false;      // source was already compiled
  double queue_ms = 0.0;               // submit -> worker pickup
  double run_ms = 0.0;                 // compile(+cache) + execution

  [[nodiscard]] bool ok() const { return status == JobStatus::kOk; }
};

}  // namespace lol::service

// Job and JobResult: the unit of work the execution service schedules.
//
// A Job is one student submission in the classroom-deployment story: a
// LOLCODE source plus the RunConfig-shaped knobs a multi-tenant host is
// willing to expose (PE count, backend, seed, stdin, resource limits,
// wall-clock deadline, tenant identity). The service clamps the limits
// against its own caps before running.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lol::service {

/// Identifies one submission for cancel() and daemon-protocol
/// correlation. Assigned by Service::submit_job, unique per Service,
/// never 0.
using JobId = std::uint64_t;

/// One queued execution request.
struct Job {
  std::string name;      // reporting label ("ring.lol", "user42#7", ...)
  std::string source;    // full LOLCODE text (the compile-cache key)
  int n_pes = 1;
  Backend backend = Backend::kVm;
  std::uint64_t seed = 20170529;
  std::vector<std::string> stdin_lines;

  /// Fair-queueing key: jobs compete FIFO within a tenant, tenants share
  /// workers by deficit-round-robin weight. "" is the default tenant.
  std::string tenant;

  // Resource requests; the service clamps them to ServiceOptions caps.
  std::uint64_t max_steps = 0;     // 0 = service default
  std::size_t heap_bytes = 1 << 20;

  /// Wall-clock execution budget in milliseconds, measured from worker
  /// pickup; 0 = service default. The reaper aborts the run when it
  /// expires, even if every PE is blocked in GIMMEH, a barrier or a lock
  /// — cases the step budget cannot see.
  std::uint64_t deadline_ms = 0;

  /// How the job's PEs map onto OS threads. The service default is the
  /// persistent process-wide pool (no per-job thread spawn/join);
  /// kFiber lets a job ask for PE counts far beyond the host's cores.
  /// Deadline/cancel semantics are identical across executors.
  shmem::ExecutorKind executor = shmem::ExecutorKind::kPool;

  /// Fiber executor only: virtual PEs per carrier thread (0 = auto).
  int pes_per_thread = 0;

  /// Combining-tree barrier fan-in (RunConfig::barrier_radix); values
  /// below 2 mean auto. Results are radix-independent by construction,
  /// so this is a performance/teaching knob, not a semantic one.
  int barrier_radix = 0;

  /// Live input override for GIMMEH (embedders only; must outlive the
  /// job). Null => stdin_lines. Blocking sources should implement
  /// rt::InputSource::try_read_line so deadlines can interrupt them.
  rt::InputSource* input = nullptr;

  /// Deterministic scheduling (replay/trace.hpp). kRecord/kPerturb
  /// serialize the gang and return the schedule in
  /// JobResult::schedule_trace; kReplay enforces `replay_trace`. The
  /// service keys the trace against this job's source hash.
  replay::ScheduleMode schedule = replay::ScheduleMode::kNone;
  std::uint64_t perturb_seed = 0;
  std::string replay_trace;  // serialized Trace (kReplay only)

  /// Fault-injection spec, replay::parse_fault_spec grammar
  /// ("pe=K@step=S", "noc=F", "input=N", comma-separated). "" = none.
  std::string fault_spec;

  /// Optimizing middle-end level (0 = off, 1 = folding/propagation,
  /// 2 = full pipeline, the default). Part of the compile-cache key:
  /// the same source at different levels is compiled and cached
  /// separately, because folding/unrolling legitimately change step
  /// counts (see src/opt/opt.hpp).
  int opt_level = 2;
};

/// How a job ended.
enum class JobStatus {
  kOk,                // ran to completion on every PE
  kCompileError,      // lex/parse/sema rejected the source
  kRuntimeError,      // a PE raised a runtime error
  kStepLimit,         // killed: a PE exhausted its step budget
  kDeadlineExceeded,  // killed: wall-clock deadline expired (reaper abort)
  kCancelled,         // killed or dequeued by Service::cancel
  kRejected,          // never ran: bounded queue was full (kReject policy)
  kQuotaExceeded,     // never ran: this tenant's queued-job quota was full
  kPeFailed,          // killed: fault injection took a PE down mid-run
  kReplayDiverged,    // replay: execution left the recorded schedule
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kCompileError: return "compile-error";
    case JobStatus::kRuntimeError: return "runtime-error";
    case JobStatus::kStepLimit: return "step-limit";
    case JobStatus::kDeadlineExceeded: return "deadline-exceeded";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kQuotaExceeded: return "quota-exceeded";
    case JobStatus::kPeFailed: return "pe-failed";
    case JobStatus::kReplayDiverged: return "replay-diverged";
  }
  return "?";
}

/// One phase of a job's lifecycle, timestamped relative to submission.
/// The service emits spans in order: queued → compile (or
/// compile[cached]) → claim (runtime build + executor claim, up to the
/// first PE starting) → run (first PE start to gang join) → drain
/// (result/output collection). Refused jobs carry only `queued`.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;  // offset from submit_job acceptance
  double dur_ms = 0.0;
};

/// Outcome delivered through the future returned by Service::submit.
struct JobResult {
  JobId id = 0;
  std::string name;
  std::string tenant;
  JobStatus status = JobStatus::kOk;
  std::string error;                   // first error (empty on kOk)
  std::vector<std::string> pe_output;  // per-PE stdout (empty unless run)
  std::vector<std::string> pe_errout;  // per-PE stderr
  bool compile_cache_hit = false;      // source was already compiled
  double queue_ms = 0.0;               // submit -> worker pickup
  double run_ms = 0.0;                 // compile(+cache) + execution
  std::vector<TraceSpan> trace;        // lifecycle phases (see TraceSpan)
  /// Serialized schedule trace when the job recorded or perturbed.
  std::string schedule_trace;
  /// Auto-tuned knobs the service applied on this run, as
  /// "knob=value" pairs ("barrier_radix=4 executor=fiber"); empty when
  /// no tuner store is configured, the store has no entry for this
  /// (program, n_pes), or the job pinned every knob itself.
  std::string tuned;

  [[nodiscard]] bool ok() const { return status == JobStatus::kOk; }
};

}  // namespace lol::service

// lol::service::Service — the multi-tenant job-execution layer.
//
// The paper's flow is one student, one program, one `coprsh -np 16`
// launch. A classroom (or playground web backend) is hundreds of
// submissions arriving at once. This service turns the engine into that
// deployment:
//
//   * a fixed pool of worker threads executes jobs (each job still runs
//     SPMD on its own n_pes threads inside the engine)
//   * per-tenant queues scheduled by deficit-round-robin: a tenant
//     flooding the service gets at most its weight's share of workers,
//     it cannot starve everyone else (the old design was one global FIFO)
//   * a bounded queue provides backpressure: submit() blocks or rejects
//     when the total queued count hits capacity, as configured
//   * an LRU CompileCache deduplicates compilation across jobs; the
//     resulting CompiledPrograms are shared, immutable, across workers
//   * per-job resource limits: the step budget (kStepLimit) catches
//     runaway loops, and a wall-clock deadline enforced by a
//     monotonic-clock reaper thread (kDeadlineExceeded) catches what
//     steps cannot — jobs blocked in GIMMEH, wedged in a barrier, or
//     spinning inside one shmem op. Both are clamped to service caps.
//   * cancel(JobId) removes a queued job or aborts an in-flight one
//     through the same shmem::Runtime::abort path (kCancelled)
//
//   Service svc({.workers = 4});
//   auto sub = svc.submit_job({.name = "ring", .source = src, .n_pes = 4});
//   svc.cancel(sub.id);            // or: JobResult r = sub.result.get();
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/abort.hpp"
#include "service/compile_cache.hpp"
#include "service/job.hpp"

namespace lol::opt {
class TunerStore;
}

namespace lol::service {

/// What submit() does when the bounded queue is full.
enum class QueueFullPolicy {
  kBlock,   // wait for space (backpressure onto the submitter)
  kReject,  // fail fast: future resolves immediately with kRejected
};

struct ServiceOptions {
  int workers = 4;
  std::size_t queue_capacity = 256;      // pending jobs before backpressure
  QueueFullPolicy queue_full = QueueFullPolicy::kBlock;

  /// Per-tenant cap on *queued* jobs (0 = unlimited). Unlike the global
  /// bound — which can block the submitter under kBlock — a tenant over
  /// its quota is rejected immediately with JobStatus::kQuotaExceeded:
  /// one flooding tenant must never get to park on the shared queue-full
  /// condition and slow everyone else's submissions down. Running jobs
  /// do not count against the quota.
  std::size_t max_queued_per_tenant = 0;
  std::size_t cache_capacity = 128;      // compiled sources kept hot
  std::size_t cache_bytes = 32u << 20;   // estimated-footprint cap (0 = off)

  // Resource-limit policy. A job asking for 0 steps gets default_max_steps;
  // any request is clamped to max_steps_cap / heap_bytes_cap (0 = uncapped).
  std::uint64_t default_max_steps = 50'000'000;
  std::uint64_t max_steps_cap = 0;
  std::size_t heap_bytes_cap = 64u << 20;
  int max_pes = 64;                      // clamp on per-job n_pes

  // Wall-clock deadline policy, same shape as the step budget: a job
  // asking for 0 ms gets default_deadline_ms (0 = none); any request is
  // clamped to deadline_ms_cap (0 = uncapped, but a cap also bounds jobs
  // that did not ask for a deadline at all).
  std::uint64_t default_deadline_ms = 0;
  std::uint64_t deadline_ms_cap = 0;

  /// Deficit-round-robin weights: a tenant with weight w gets w jobs
  /// dispatched per scheduling round. Unlisted tenants get
  /// default_tenant_weight.
  std::map<std::string, int> tenant_weights;
  int default_tenant_weight = 1;

  /// Durable auto-tuner store (opt::TunerStore file path; "" disables).
  /// When set, each executing job looks up the persisted tuned knobs
  /// for its (program hash, n_pes) and applies every knob the job left
  /// at its default — an explicit executor/radix/packing request always
  /// wins over the tuner. Applied knobs are reported in
  /// JobResult::tuned. Outputs are knob-invariant by construction, so
  /// this only ever changes wall-clock.
  std::string tuner_cache_path;

  /// When true, workers are not started by the constructor; jobs queue up
  /// until start() is called. Lets tests (and staged deployments) fill
  /// the queue deterministically.
  bool start_paused = false;
};

class Service {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;   // ran (any status but kRejected)
    std::uint64_t ok = 0;
    std::uint64_t compile_errors = 0;
    std::uint64_t runtime_errors = 0;
    std::uint64_t step_limited = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t cancelled = 0;   // queued + in-flight cancels
    std::uint64_t rejected = 0;
    std::uint64_t quota_rejected = 0;  // per-tenant quota refusals
    std::uint64_t pe_failed = 0;       // fault injection took a PE down
    std::uint64_t replay_diverged = 0;
    CompileCache::Stats cache;
  };

  /// Invoked on the worker thread (or the submitter, for rejected /
  /// queued-cancelled jobs) right before the job's future resolves.
  /// Must not call back into the Service.
  using Callback = std::function<void(const JobResult&)>;

  /// What submit_job hands back: the id (usable with cancel) plus the
  /// future the result arrives on.
  struct Submission {
    JobId id = 0;
    std::future<JobResult> result;
  };

  explicit Service(ServiceOptions opts = {});

  /// Drains the queue and joins the workers.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueues a job on its tenant's queue. With kBlock the call waits
  /// for queue space; with kReject a full queue resolves the future
  /// immediately with JobStatus::kRejected. The future is always valid.
  /// `on_done`, when set, streams the result as soon as the job finishes
  /// (the daemon and lolserve use this for per-job status lines).
  Submission submit_job(Job job, Callback on_done = nullptr);

  /// Compatibility shorthand for callers that only want the future.
  std::future<JobResult> submit(Job job) {
    return submit_job(std::move(job)).result;
  }

  /// Cancels a job: a queued job is removed and resolves kCancelled
  /// without running; an in-flight job is aborted through its runtime
  /// (PEs blocked in barriers/locks/GIMMEH wake up and die). Returns
  /// false when the id is unknown or the job already finished.
  bool cancel(JobId id);

  /// Starts the workers (no-op unless constructed with start_paused).
  void start();

  /// Stops accepting new jobs, finishes everything queued, joins the
  /// workers and the reaper. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

  /// Pending (not yet picked up) jobs — used by tests and monitoring.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Jobs currently executing on workers.
  [[nodiscard]] std::size_t running_depth() const;

 private:
  /// Why an in-flight job was aborted; decides the reported status when
  /// the run comes back failed. First writer wins (CAS from kNone).
  enum AbortReason : int { kReasonNone = 0, kReasonDeadline, kReasonCancel };

  /// Shared between the executing worker, the reaper and cancel().
  struct Inflight {
    AbortToken token;
    std::atomic<int> abort_reason{kReasonNone};
    std::atomic<bool> done{false};
  };

  struct Pending {
    JobId id = 0;
    Job job;
    std::promise<JobResult> promise;
    Callback on_done;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One tenant's FIFO plus its DRR scheduling state. Entries are
  /// reaped once the queue drains (tenant names are client-chosen in
  /// daemon mode, so a persistent map would be an unbounded-memory DoS).
  struct TenantState {
    std::string name;      // map key, for self-removal on drain
    int weight = 1;
    int credit = 0;        // jobs this tenant may still dispatch this round
    bool in_rotation = false;
    std::deque<Pending> q;
  };

  struct ReapEntry {
    std::chrono::steady_clock::time_point when;
    std::shared_ptr<Inflight> inflight;
  };
  struct ReapLater {
    bool operator()(const ReapEntry& a, const ReapEntry& b) const {
      return a.when > b.when;
    }
  };

  void start_locked();  // spawns workers + reaper; caller holds m_
  void worker_loop();
  void reaper_loop();
  void arm_deadline(std::chrono::steady_clock::time_point when,
                    const std::shared_ptr<Inflight>& inflight);
  Pending pop_locked();  // DRR pick; caller holds m_, queued_total_ > 0
  JobResult execute(Pending& p, Inflight& inflight, double queue_ms);
  void record(const JobResult& r);
  void deliver(Pending& p, JobResult r);  // callback + promise

  /// Per-Service lock-free counters. Workers bump these without m_, and
  /// stats() assembles a snapshot from relaxed loads — the old design
  /// copied a Stats struct under the service mutex, stalling submitters
  /// and workers behind every monitoring scrape. Padded so a worker
  /// recording results never false-shares with submitters counting
  /// rejections. Mirrored into obs::Registry::global() at the same
  /// sites; these stay per-instance so multiple Services (tests run
  /// many) keep exact independent counts.
  struct AtomicStats {
    alignas(64) std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> quota_rejected{0};
    alignas(64) std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> compile_errors{0};
    std::atomic<std::uint64_t> runtime_errors{0};
    std::atomic<std::uint64_t> step_limited{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> pe_failed{0};
    std::atomic<std::uint64_t> replay_diverged{0};
  };

  ServiceOptions opts_;
  CompileCache cache_;
  std::unique_ptr<opt::TunerStore> tuner_;  // null unless tuner_cache_path

  mutable std::mutex m_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::unordered_map<std::string, TenantState> tenants_;
  std::deque<TenantState*> rotation_;  // tenants with queued jobs, DRR order
  std::size_t queued_total_ = 0;
  std::unordered_map<JobId, std::shared_ptr<Inflight>> running_;
  JobId next_id_ = 1;
  bool stopping_ = false;
  bool started_ = false;
  AtomicStats counts_;

  std::vector<std::thread> workers_;

  // Deadline reaper: a min-heap of (expiry, inflight) serviced by one
  // thread on the monotonic clock. Lazy deletion: entries for jobs that
  // finished early stay queued until their expiry and are discarded
  // then — bounded by (job rate x deadline cap) ~32-byte entries, which
  // beats the bookkeeping of an erasable indexed heap.
  std::mutex reaper_m_;
  std::condition_variable reaper_cv_;
  std::priority_queue<ReapEntry, std::vector<ReapEntry>, ReapLater> reap_;
  bool reaper_stop_ = false;
  std::thread reaper_;
};

}  // namespace lol::service

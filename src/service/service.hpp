// lol::service::Service — the multi-tenant job-execution layer.
//
// The paper's flow is one student, one program, one `coprsh -np 16`
// launch. A classroom (or playground web backend) is hundreds of
// submissions arriving at once. This service turns the engine into that
// deployment:
//
//   * a fixed pool of worker threads executes jobs (each job still runs
//     SPMD on its own n_pes threads inside the engine)
//   * a bounded queue provides backpressure: submit() blocks or rejects
//     when the queue is full, as configured
//   * an LRU CompileCache deduplicates compilation across jobs; the
//     resulting CompiledPrograms are shared, immutable, across workers
//   * per-job resource limits (step budget, symmetric-heap bytes) are
//     clamped to service-wide caps so a hostile or looping submission is
//     killed cleanly (JobStatus::kStepLimit) instead of wedging a worker
//
//   Service svc({.workers = 4});
//   auto fut = svc.submit({.name = "ring", .source = src, .n_pes = 4});
//   JobResult r = fut.get();
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/compile_cache.hpp"
#include "service/job.hpp"

namespace lol::service {

/// What submit() does when the bounded queue is full.
enum class QueueFullPolicy {
  kBlock,   // wait for space (backpressure onto the submitter)
  kReject,  // fail fast: future resolves immediately with kRejected
};

struct ServiceOptions {
  int workers = 4;
  std::size_t queue_capacity = 256;      // pending jobs before backpressure
  QueueFullPolicy queue_full = QueueFullPolicy::kBlock;
  std::size_t cache_capacity = 128;      // compiled sources kept hot

  // Resource-limit policy. A job asking for 0 steps gets default_max_steps;
  // any request is clamped to max_steps_cap / heap_bytes_cap (0 = uncapped).
  std::uint64_t default_max_steps = 50'000'000;
  std::uint64_t max_steps_cap = 0;
  std::size_t heap_bytes_cap = 64u << 20;
  int max_pes = 64;                      // clamp on per-job n_pes

  /// When true, workers are not started by the constructor; jobs queue up
  /// until start() is called. Lets tests (and staged deployments) fill
  /// the queue deterministically.
  bool start_paused = false;
};

class Service {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;   // ran (any status but kRejected)
    std::uint64_t ok = 0;
    std::uint64_t compile_errors = 0;
    std::uint64_t runtime_errors = 0;
    std::uint64_t step_limited = 0;
    std::uint64_t rejected = 0;
    CompileCache::Stats cache;
  };

  explicit Service(ServiceOptions opts = {});

  /// Drains the queue and joins the workers.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueues a job. With kBlock the call waits for queue space; with
  /// kReject a full queue resolves the future immediately with
  /// JobStatus::kRejected. The future is always valid.
  std::future<JobResult> submit(Job job);

  /// Starts the workers (no-op unless constructed with start_paused).
  void start();

  /// Stops accepting new jobs, finishes everything queued, joins the
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

  /// Pending (not yet picked up) jobs — used by tests and monitoring.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Pending {
    Job job;
    std::promise<JobResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void start_locked();  // spawns the workers; caller holds m_
  void worker_loop();
  JobResult execute(Job& job, double queue_ms);
  void record(const JobResult& r);

  ServiceOptions opts_;
  CompileCache cache_;

  mutable std::mutex m_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool started_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace lol::service

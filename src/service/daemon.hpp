// lolserve daemon mode: a long-running socket front end for the Service.
//
// Clients connect over a Unix-domain socket or loopback TCP and speak
// newline-delimited JSON (see wire.hpp): submit jobs, cancel by id, read
// stats. Per-job "done" events stream back the moment each job finishes
// (Service completion callbacks), so deadlines, cancellation and fair
// queueing are all observable from outside the process — exactly the
// knobs a classroom front end needs.
//
//   Service svc(opts);
//   Daemon daemon(svc, {.tcp_port = 0});      // 0 = ephemeral port
//   daemon.start(&err);
//   ... daemon.wait();                        // until a client sends
//   daemon.stop();                            // {"op":"shutdown"}
//
// Connections are handled one thread each (classroom-scale fan-in; the
// heavy concurrency lives in the Service worker pool behind it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "service/service.hpp"

namespace lol::service {

struct DaemonOptions {
  /// Non-empty => listen on this Unix-domain socket path (takes
  /// precedence over tcp_port). The path is unlinked on stop.
  std::string unix_path;
  /// >= 0 => listen on 127.0.0.1:tcp_port (0 picks an ephemeral port,
  /// readable via tcp_port() after start — tests use this).
  int tcp_port = -1;
  int backlog = 16;
};

class Daemon {
 public:
  Daemon(Service& svc, DaemonOptions opts);

  /// Stops if still running.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens and starts the accept thread. False + `error` on
  /// failure (bad options, bind error).
  bool start(std::string* error = nullptr);

  /// Blocks until a client requests shutdown or stop() is called.
  void wait();

  /// Closes the listener and every connection, joins all threads.
  /// In-flight jobs keep running in the Service; their completion
  /// callbacks write into closed sockets and are dropped. Idempotent.
  void stop();

  /// The bound TCP port (-1 when listening on a Unix socket).
  [[nodiscard]] int tcp_port() const { return port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return opts_.unix_path;
  }

 private:
  /// Per-connection state shared with in-flight completion callbacks,
  /// which may outlive the connection thread. The fd is closed only when
  /// the last reference drops; stop() shuts it down first so late
  /// writes fail instead of blocking. `finished` flags the entry for
  /// reaping by the accept loop once serve_connection returns.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    int fd;
    std::mutex write_m;
    std::atomic<bool> finished{false};
    // Live ids submitted on this connection: cancel is scoped to them,
    // so one client cannot walk the sequential id space and kill other
    // tenants' jobs. Entries are erased when the done event ships, so
    // the set stays bounded by in-flight jobs, not connection lifetime.
    // Guarded by ids_m (completion callbacks run on worker threads).
    std::mutex ids_m;
    std::unordered_set<JobId> submitted;
  };

  struct ConnEntry {
    std::shared_ptr<Conn> conn;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Conn>& conn);
  bool handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& line);  // false => close connection
  static void send_line(Conn& conn, const std::string& line);
  void reap_finished_connections();
  void request_shutdown();

  Service& svc_;
  DaemonOptions opts_;
  std::atomic<int> listen_fd_{-1};  // stop() closes it under accept's feet
  bool bound_unix_ = false;  // we own unix_path; stop() may unlink it
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conns_m_;
  std::vector<ConnEntry> conns_;

  std::mutex done_m_;
  std::condition_variable done_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace lol::service

#include "service/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "service/wire.hpp"

namespace lol::service {

Daemon::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Daemon::Daemon(Service& svc, DaemonOptions opts)
    : svc_(svc), opts_(std::move(opts)) {}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": " + std::strerror(errno);
    int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::close(fd);
    return false;
  };

  if (!opts_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      if (errno != EADDRINUSE) return fail("bind " + opts_.unix_path);
      // In-use path: distinguish a live daemon (connect succeeds —
      // refuse to hijack it) from a stale socket left by a dead one
      // (connect fails — unlink and retry).
      int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool alive = probe >= 0 &&
                   ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (alive) {
        errno = EADDRINUSE;
        return fail("another daemon is listening on " + opts_.unix_path);
      }
      ::unlink(opts_.unix_path.c_str());
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        return fail("bind " + opts_.unix_path);
      }
    }
    bound_unix_ = true;
  } else if (opts_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return fail("bind 127.0.0.1:" + std::to_string(opts_.tcp_port));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
  } else {
    if (error != nullptr) {
      *error = "daemon needs a unix socket path or a TCP port";
    }
    return false;
  }

  if (::listen(listen_fd_, opts_.backlog) < 0) return fail("listen");
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Daemon::reap_finished_connections() {
  std::lock_guard<std::mutex> g(conns_m_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->conn->finished.load(std::memory_order_acquire)) {
      it->thread.join();  // returns immediately: the thread is done
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::accept_loop() {
  for (;;) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already closed the listener
    int fd = ::accept(lfd, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      // Transient failures (ECONNABORTED handshake aborts, EMFILE fd
      // pressure, EINTR) must not kill the daemon's front door; only a
      // dead listener ends the loop.
      if (errno == EBADF || errno == EINVAL) return;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      continue;
    }
    reap_finished_connections();  // fds/threads of closed clients
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> g(conns_m_);
    conns_.push_back(ConnEntry{
        conn, std::thread([this, conn] {
          serve_connection(conn);
          conn->finished.store(true, std::memory_order_release);
        })});
  }
}

void Daemon::serve_connection(const std::shared_ptr<Conn>& conn) {
  wire::LineReader reader(conn->fd);
  // next() returns nullopt when the client closes (or stop() shuts the
  // socket down), or when one line exceeds the reader's frame bound.
  while (auto line = reader.next()) {
    if (line->empty()) continue;
    if (!handle_line(conn, *line)) return;
  }
  if (reader.line_too_long()) {
    send_line(*conn, wire::error_line("request line too long"));
  }
}

bool Daemon::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  std::string err;
  auto req = wire::parse_request(line, &err);
  if (!req) {
    send_line(*conn, wire::error_line(err));
    return true;  // malformed line; keep the connection
  }
  switch (req->op) {
    case wire::Request::Op::kSubmit: {
      Job echo;  // name/tenant round-trip for the accepted event
      echo.name = req->job.name;
      echo.tenant = req->job.tenant;
      // A worker (or a synchronous reject) can finish the job before
      // this thread has written the "accepted" line; the gate holds any
      // early "done" event back — without ever blocking the worker —
      // so clients always learn the id first.
      struct AcceptGate {
        std::mutex m;
        bool open = false;
        std::vector<std::pair<std::string, JobId>> held;
      };
      auto gate = std::make_shared<AcceptGate>();
      // The callback owns a Conn reference: it may fire after this
      // connection (or the whole daemon) is gone, in which case send()
      // fails harmlessly on the shut-down socket.
      auto sub = svc_.submit_job(
          std::move(req->job), [conn, gate](const JobResult& r) {
            std::string line = wire::result_line(r);
            {
              std::lock_guard<std::mutex> g(gate->m);
              if (!gate->open) {
                gate->held.emplace_back(std::move(line), r.id);
                return;
              }
            }
            send_line(*conn, line);
            std::lock_guard<std::mutex> g(conn->ids_m);
            conn->submitted.erase(r.id);  // job over; id no longer live
          });
      {
        std::lock_guard<std::mutex> g(conn->ids_m);
        conn->submitted.insert(sub.id);
      }
      send_line(*conn, wire::accepted_line(sub.id, echo));
      std::vector<std::pair<std::string, JobId>> held;
      {
        std::lock_guard<std::mutex> g(gate->m);
        gate->open = true;
        held.swap(gate->held);
      }
      for (const auto& [line, id] : held) {
        send_line(*conn, line);
        std::lock_guard<std::mutex> g(conn->ids_m);
        conn->submitted.erase(id);
      }
      return true;
    }
    case wire::Request::Op::kCancel: {
      // Only live jobs submitted on this connection may be cancelled:
      // ids are sequential, so an unscoped cancel would let any client
      // kill other tenants' jobs by walking the id space.
      bool mine;
      {
        std::lock_guard<std::mutex> g(conn->ids_m);
        mine = conn->submitted.count(req->id) != 0;
      }
      send_line(*conn,
                wire::cancel_line(req->id, mine && svc_.cancel(req->id)));
      return true;
    }
    case wire::Request::Op::kStats:
      send_line(*conn, wire::stats_line(svc_.stats()));
      return true;
    case wire::Request::Op::kMetrics:
      send_line(*conn,
                wire::metrics_line(obs::Registry::global().expose()));
      return true;
    case wire::Request::Op::kPing:
      send_line(*conn, wire::pong_line());
      return true;
    case wire::Request::Op::kShutdown:
      send_line(*conn, wire::bye_line());
      request_shutdown();
      return false;
  }
  return true;
}

void Daemon::send_line(Conn& conn, const std::string& line) {
  // Best-effort: a failed send means the client vanished; the reader
  // side notices the close and tears the connection down.
  std::lock_guard<std::mutex> g(conn.write_m);
  if (wire::send_all(conn.fd, line)) wire::send_all(conn.fd, "\n");
}

void Daemon::request_shutdown() {
  {
    std::lock_guard<std::mutex> g(done_m_);
    shutdown_requested_ = true;
  }
  done_cv_.notify_all();
}

void Daemon::wait() {
  std::unique_lock<std::mutex> g(done_m_);
  done_cv_.wait(g, [&] { return shutdown_requested_; });
}

void Daemon::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  request_shutdown();
  int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<ConnEntry> conns;
  {
    std::lock_guard<std::mutex> g(conns_m_);
    conns.swap(conns_);
  }
  // Shut down (not close) each socket: blocked recv()s return, and a
  // completion callback still holding the Conn fails its send instead
  // of writing to a recycled fd.
  for (auto& c : conns) ::shutdown(c.conn->fd, SHUT_RDWR);
  for (auto& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
  // Only remove a path this instance actually bound — a failed start
  // (another live daemon owns it) must not break that daemon.
  if (bound_unix_) ::unlink(opts_.unix_path.c_str());
}

}  // namespace lol::service

#include "service/service.hpp"

#include <algorithm>
#include <utility>

namespace lol::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_capacity) {
  opts_.workers = std::max(1, opts_.workers);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  if (!opts_.start_paused) start();
}

Service::~Service() { shutdown(); }

void Service::start_locked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Service::start() {
  std::lock_guard<std::mutex> g(m_);
  if (stopping_) return;
  start_locked();
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> g(m_);
    if (stopping_) return;
    stopping_ = true;
    // A paused service still owes every queued future a result; workers
    // drain the queue before exiting, so start them now if need be.
    start_locked();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<JobResult> Service::submit(Job job) {
  Pending p;
  p.job = std::move(job);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<JobResult> fut = p.promise.get_future();

  std::unique_lock<std::mutex> g(m_);
  ++stats_.submitted;

  auto reject = [&](const char* why) {
    JobResult r;
    r.name = p.job.name;
    r.status = JobStatus::kRejected;
    r.error = why;
    ++stats_.rejected;
    g.unlock();
    p.promise.set_value(std::move(r));
    return std::move(fut);
  };

  if (stopping_) return reject("service is shutting down");

  if (queue_.size() >= opts_.queue_capacity) {
    if (opts_.queue_full == QueueFullPolicy::kReject) {
      return reject("queue full");
    }
    not_full_.wait(g, [&] {
      return queue_.size() < opts_.queue_capacity || stopping_;
    });
    if (stopping_) return reject("service is shutting down");
  }

  queue_.push_back(std::move(p));
  g.unlock();
  not_empty_.notify_one();
  return fut;
}

void Service::worker_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> g(m_);
      not_empty_.wait(g, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();

    JobResult r;
    try {
      r = execute(p.job, ms_since(p.enqueued));
    } catch (const std::exception& e) {
      // lol::run can throw outside the per-PE guards (heap allocation in
      // the Runtime constructor, thread exhaustion in launch). A worker
      // must never die with the job — that would take the process down.
      r = JobResult{};
      r.name = p.job.name;
      r.status = JobStatus::kRuntimeError;
      r.error = e.what();
    }
    record(r);
    p.promise.set_value(std::move(r));
  }
}

JobResult Service::execute(Job& job, double queue_ms) {
  auto t0 = std::chrono::steady_clock::now();
  JobResult r;
  r.name = job.name;
  r.queue_ms = queue_ms;

  CachedCompile compiled = cache_.get_or_compile(job.source,
                                                 &r.compile_cache_hit);
  if (!compiled.ok()) {
    r.status = JobStatus::kCompileError;
    r.error = compiled.error;
    r.run_ms = ms_since(t0);
    return r;
  }

  RunConfig cfg;
  cfg.n_pes = std::clamp(job.n_pes, 1, std::max(1, opts_.max_pes));
  cfg.backend = job.backend;
  cfg.seed = job.seed;
  cfg.stdin_lines = job.stdin_lines;
  cfg.max_steps =
      job.max_steps == 0 ? opts_.default_max_steps : job.max_steps;
  if (opts_.max_steps_cap != 0) {
    // The cap is a hard ceiling: an "unlimited" (0) resolved budget is
    // clamped down to it too, or a looping job would wedge a worker.
    cfg.max_steps = cfg.max_steps == 0
                        ? opts_.max_steps_cap
                        : std::min(cfg.max_steps, opts_.max_steps_cap);
  }
  cfg.heap_bytes = job.heap_bytes;
  if (opts_.heap_bytes_cap != 0) {
    cfg.heap_bytes = std::min(cfg.heap_bytes, opts_.heap_bytes_cap);
  }

  RunResult run = lol::run(*compiled.program, cfg);
  r.pe_output = std::move(run.pe_output);
  r.pe_errout = std::move(run.pe_errout);
  if (run.ok) {
    r.status = JobStatus::kOk;
  } else if (run.step_limited) {
    r.status = JobStatus::kStepLimit;
    r.error = run.first_error();
  } else {
    r.status = JobStatus::kRuntimeError;
    r.error = run.first_error();
  }
  r.run_ms = ms_since(t0);
  return r;
}

void Service::record(const JobResult& r) {
  std::lock_guard<std::mutex> g(m_);
  ++stats_.completed;
  switch (r.status) {
    case JobStatus::kOk: ++stats_.ok; break;
    case JobStatus::kCompileError: ++stats_.compile_errors; break;
    case JobStatus::kRuntimeError: ++stats_.runtime_errors; break;
    case JobStatus::kStepLimit: ++stats_.step_limited; break;
    case JobStatus::kRejected: break;  // rejected jobs never reach here
  }
}

Service::Stats Service::stats() const {
  std::lock_guard<std::mutex> g(m_);
  Stats s = stats_;
  s.cache = cache_.stats();
  return s;
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> g(m_);
  return queue_.size();
}

}  // namespace lol::service

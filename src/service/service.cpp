#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "opt/opt.hpp"
#include "opt/tuner.hpp"

namespace lol::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Global service metrics, resolved once. Per-Service exact counts live
/// in Service::AtomicStats; these registry instruments aggregate across
/// every Service in the process (a daemon runs exactly one) and feed the
/// Prometheus exposition. Tenant-labelled families are protected by the
/// registry's cardinality cap: a hostile client inventing tenant names
/// lands in the "_other" series instead of growing the process.
struct SvcMetrics {
  obs::Counter& submitted;
  obs::CounterFamily& done_by_status;
  obs::Gauge& queue_depth;
  obs::Gauge& running;
  obs::Histogram& queue_wait_ms;
  obs::Histogram& total_ms;
  obs::CounterFamily& deadline_by_tenant;
  obs::CounterFamily& quota_by_tenant;
  obs::Counter& tuner_applied;
  SvcMetrics()
      : submitted(obs::Registry::global().counter(
            "lol_jobs_submitted_total", "Jobs accepted by submit_job")),
        done_by_status(obs::Registry::global().counter_family(
            "lol_jobs_done_total",
            "Jobs whose result was delivered, by final status", "status")),
        queue_depth(obs::Registry::global().gauge(
            "lol_queue_depth", "Jobs queued and not yet picked up")),
        running(obs::Registry::global().gauge(
            "lol_jobs_running", "Jobs currently executing on workers")),
        queue_wait_ms(obs::Registry::global().histogram(
            "lol_queue_wait_ms", "Submit-to-worker-pickup latency (ms)",
            {1, 5, 20, 100, 500, 2000})),
        total_ms(obs::Registry::global().histogram(
            "lol_job_total_ms",
            "End-to-end latency, submit to result delivered (ms)",
            {1, 5, 20, 100, 500, 2000, 10000})),
        deadline_by_tenant(obs::Registry::global().counter_family(
            "lol_deadline_exceeded_total",
            "Jobs killed by the wall-clock deadline reaper, by tenant",
            "tenant")),
        quota_by_tenant(obs::Registry::global().counter_family(
            "lol_quota_rejected_total",
            "Submissions refused by the per-tenant queued-job quota, "
            "by tenant",
            "tenant")),
        tuner_applied(obs::Registry::global().counter(
            "lol_tuner_applied_total",
            "Jobs that ran with persisted auto-tuned knobs applied")) {}
};

SvcMetrics& svc_metrics() {
  static SvcMetrics m;
  return m;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_capacity, opts_.cache_bytes) {
  if (!opts_.tuner_cache_path.empty()) {
    tuner_ = std::make_unique<opt::TunerStore>(opts_.tuner_cache_path);
  }
  opts_.workers = std::max(1, opts_.workers);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
  opts_.default_tenant_weight = std::max(1, opts_.default_tenant_weight);
  if (!opts_.start_paused) start();
}

Service::~Service() { shutdown(); }

void Service::start_locked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reaper_ = std::thread([this] { reaper_loop(); });
}

void Service::start() {
  std::lock_guard<std::mutex> g(m_);
  if (stopping_) return;
  start_locked();
}

void Service::shutdown() {
  {
    std::lock_guard<std::mutex> g(m_);
    if (stopping_) return;
    stopping_ = true;
    // A paused service still owes every queued future a result; workers
    // drain the queue before exiting, so start them now if need be.
    start_locked();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // The reaper outlives the workers: deadlines must keep firing while
  // the drain runs, or a wedged job would hang shutdown forever.
  {
    std::lock_guard<std::mutex> g(reaper_m_);
    reaper_stop_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

Service::Submission Service::submit_job(Job job, Callback on_done) {
  Pending p;
  p.job = std::move(job);
  p.on_done = std::move(on_done);
  p.enqueued = std::chrono::steady_clock::now();
  Submission sub;
  sub.result = p.promise.get_future();

  std::unique_lock<std::mutex> g(m_);
  sub.id = next_id_++;
  p.id = sub.id;
  counts_.submitted.fetch_add(1, std::memory_order_relaxed);
  svc_metrics().submitted.inc();

  auto refuse = [&](JobStatus status, const std::string& why) {
    JobResult r;
    r.id = p.id;
    r.name = p.job.name;
    r.tenant = p.job.tenant;
    r.status = status;
    r.error = why;
    // Refused jobs never reach a worker; their whole lifecycle is the
    // queued span (submit to refusal, effectively instantaneous).
    r.trace.push_back({"queued", 0.0, ms_since(p.enqueued)});
    if (status == JobStatus::kQuotaExceeded) {
      counts_.quota_rejected.fetch_add(1, std::memory_order_relaxed);
      svc_metrics().quota_by_tenant.with(p.job.tenant).inc();
    } else {
      counts_.rejected.fetch_add(1, std::memory_order_relaxed);
    }
    svc_metrics().done_by_status.with(to_string(status)).inc();
    g.unlock();
    deliver(p, std::move(r));
    return std::move(sub);
  };
  auto reject = [&](const char* why) {
    return refuse(JobStatus::kRejected, why);
  };
  auto over_quota = [&] {
    if (opts_.max_queued_per_tenant == 0) return false;
    auto t = tenants_.find(p.job.tenant);
    return t != tenants_.end() &&
           t->second.q.size() >= opts_.max_queued_per_tenant;
  };
  auto refuse_quota = [&] {
    return refuse(JobStatus::kQuotaExceeded,
                  "tenant quota exceeded (" +
                      std::to_string(opts_.max_queued_per_tenant) +
                      " queued jobs)");
  };

  if (stopping_) return reject("service is shutting down");

  // Per-tenant quota before the global bound: a flooding tenant is
  // refused outright (distinguishable status, no blocking) rather than
  // being allowed to fill the shared queue or park on not_full_.
  if (over_quota()) return refuse_quota();

  if (queued_total_ >= opts_.queue_capacity) {
    if (opts_.queue_full == QueueFullPolicy::kReject) {
      return reject("queue full");
    }
    not_full_.wait(g, [&] {
      return queued_total_ < opts_.queue_capacity || stopping_;
    });
    if (stopping_) return reject("service is shutting down");
    // Re-check: siblings of this tenant may have refilled its queue
    // while this submitter was parked on the global bound.
    if (over_quota()) return refuse_quota();
  }

  auto [it, inserted] = tenants_.try_emplace(p.job.tenant);
  TenantState& ts = it->second;
  if (inserted) {
    ts.name = p.job.tenant;
    auto w = opts_.tenant_weights.find(p.job.tenant);
    ts.weight = std::max(1, w != opts_.tenant_weights.end()
                                ? w->second
                                : opts_.default_tenant_weight);
  }
  ts.q.push_back(std::move(p));
  if (!ts.in_rotation) {
    ts.in_rotation = true;
    rotation_.push_back(&ts);
  }
  ++queued_total_;
  svc_metrics().queue_depth.add(1);
  g.unlock();
  not_empty_.notify_one();
  return sub;
}

Service::Pending Service::pop_locked() {
  for (;;) {
    TenantState* t = rotation_.front();
    if (t->q.empty()) {
      // cancel() can drain a tenant that is still in the rotation.
      rotation_.pop_front();
      // Reap drained tenants: names are client-chosen in daemon mode,
      // so keeping entries forever would be an unbounded-memory DoS.
      // (Copy the key — erasing through a reference into the node is
      // use-after-free bait.)
      std::string name = t->name;
      tenants_.erase(name);
      continue;
    }
    if (t->credit == 0) t->credit = t->weight;  // new DRR round
    Pending p = std::move(t->q.front());
    t->q.pop_front();
    --queued_total_;
    svc_metrics().queue_depth.sub(1);
    if (--t->credit == 0 || t->q.empty()) {
      rotation_.pop_front();
      if (t->q.empty()) {
        std::string name = t->name;
        tenants_.erase(name);
      } else {
        rotation_.push_back(t);  // spent its round; go to the back
      }
    }
    return p;
  }
}

void Service::worker_loop() {
  for (;;) {
    Pending p;
    std::shared_ptr<Inflight> inflight;
    {
      std::unique_lock<std::mutex> g(m_);
      not_empty_.wait(g, [&] { return queued_total_ > 0 || stopping_; });
      if (queued_total_ == 0) return;  // stopping and drained
      p = pop_locked();
      // Register before releasing the lock so cancel(id) never sees a
      // job that is neither queued nor running.
      inflight = std::make_shared<Inflight>();
      running_.emplace(p.id, inflight);
    }
    svc_metrics().running.add(1);
    not_full_.notify_one();

    // Resolve the wall-clock budget like the step budget: job request,
    // else service default, everything clamped to the cap.
    std::uint64_t deadline_ms = p.job.deadline_ms == 0
                                    ? opts_.default_deadline_ms
                                    : p.job.deadline_ms;
    if (opts_.deadline_ms_cap != 0) {
      deadline_ms = deadline_ms == 0
                        ? opts_.deadline_ms_cap
                        : std::min(deadline_ms, opts_.deadline_ms_cap);
    }
    if (deadline_ms != 0) {
      arm_deadline(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms),
                   inflight);
    }

    JobResult r;
    try {
      r = execute(p, *inflight, ms_since(p.enqueued));
    } catch (const std::exception& e) {
      // lol::run can throw outside the per-PE guards (heap allocation in
      // the Runtime constructor, thread exhaustion in launch). A worker
      // must never die with the job — that would take the process down.
      r = JobResult{};
      r.id = p.id;
      r.name = p.job.name;
      r.tenant = p.job.tenant;
      r.status = JobStatus::kRuntimeError;
      r.error = e.what();
    }
    if (r.status == JobStatus::kDeadlineExceeded && deadline_ms != 0) {
      r.error = "deadline of " + std::to_string(deadline_ms) +
                " ms exceeded (job aborted)";
    }
    inflight->done.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> g(m_);
      running_.erase(p.id);
    }
    svc_metrics().running.sub(1);
    record(r);
    deliver(p, std::move(r));
  }
}

JobResult Service::execute(Pending& p, Inflight& inflight, double queue_ms) {
  Job& job = p.job;
  auto t0 = std::chrono::steady_clock::now();
  JobResult r;
  r.id = p.id;
  r.name = job.name;
  r.tenant = job.tenant;
  r.queue_ms = queue_ms;
  // Lifecycle trace: spans are timestamped as offsets from submission
  // (queued start = 0), so a tail-latency outlier in the done event is
  // attributable to a phase at a glance.
  r.trace.push_back({"queued", 0.0, queue_ms});

  // Optimization happens once, at cache-insert time: every later job
  // for this (source, level) — on any backend — runs the same
  // already-optimized program.
  CompileOptions copts;
  copts.opt_level = std::clamp(job.opt_level, 0, 2);
  // The tuner's unroll preference is a *compile* knob, so the lookup
  // happens before the compile cache: a tuned budget selects (or
  // populates) a distinct cache entry. Same guardrails as the runtime
  // knobs below: never under record/replay.
  std::optional<opt::TunedKnobs> tuned;
  if (tuner_ != nullptr && job.schedule == replay::ScheduleMode::kNone) {
    tuned = tuner_->lookup(
        replay::fnv1a(job.source),
        std::clamp(job.n_pes, 1, std::max(1, opts_.max_pes)));
  }
  if (tuned && tuned->unroll_max_trip != 0 && copts.opt_level >= 2) {
    copts.unroll_max_trip = tuned->unroll_value();
  }
  CachedCompile compiled =
      cache_.get_or_compile(job.source, copts, &r.compile_cache_hit);
  double compile_ms = ms_since(t0);
  r.trace.push_back({r.compile_cache_hit ? "compile[cached]" : "compile",
                     queue_ms, compile_ms});
  if (!compiled.ok()) {
    r.status = JobStatus::kCompileError;
    r.error = compiled.error;
    r.run_ms = ms_since(t0);
    return r;
  }

  RunConfig cfg;
  cfg.n_pes = std::clamp(job.n_pes, 1, std::max(1, opts_.max_pes));
  cfg.backend = job.backend;
  cfg.seed = job.seed;
  cfg.stdin_lines = job.stdin_lines;
  cfg.input = job.input;
  cfg.abort = &inflight.token;
  cfg.max_steps =
      job.max_steps == 0 ? opts_.default_max_steps : job.max_steps;
  if (opts_.max_steps_cap != 0) {
    // The cap is a hard ceiling: an "unlimited" (0) resolved budget is
    // clamped down to it too, or a looping job would wedge a worker.
    cfg.max_steps = cfg.max_steps == 0
                        ? opts_.max_steps_cap
                        : std::min(cfg.max_steps, opts_.max_steps_cap);
  }
  cfg.heap_bytes = job.heap_bytes;
  if (opts_.heap_bytes_cap != 0) {
    cfg.heap_bytes = std::min(cfg.heap_bytes, opts_.heap_bytes_cap);
  }
  cfg.executor = job.executor;
  cfg.pes_per_thread = job.pes_per_thread;
  cfg.barrier_radix = job.barrier_radix;  // Runtime clamps hostile fan-ins

  // Warm-hit auto-tuning: apply the persisted calibration winner for
  // this (program, n_pes), but only the knobs the job left at their
  // defaults — an explicit request always wins — and never under
  // record/replay, whose traces are schedule-shape-sensitive. Outputs
  // are knob-invariant by construction; this trades wall-clock only.
  if (tuner_ != nullptr && job.schedule == replay::ScheduleMode::kNone) {
    if (const auto& k = tuned) {
      std::string applied;
      auto note = [&applied](const std::string& kv) {
        if (!applied.empty()) applied += ' ';
        applied += kv;
      };
      if (k->barrier_radix != 0 && job.barrier_radix < 2) {
        cfg.barrier_radix = k->barrier_radix;
        note("barrier_radix=" + std::to_string(k->barrier_radix));
      }
      if (!k->executor.empty() &&
          job.executor == shmem::ExecutorKind::kPool) {
        if (auto e = shmem::executor_from_name(k->executor)) {
          cfg.executor = *e;
          note("executor=" + k->executor);
        }
      }
      if (k->pes_per_thread != 0 && job.pes_per_thread == 0 &&
          cfg.executor == shmem::ExecutorKind::kFiber) {
        cfg.pes_per_thread = k->pes_per_thread;
        note("pes_per_thread=" + std::to_string(k->pes_per_thread));
      }
      if (k->unroll_max_trip != 0 && copts.opt_level >= 2) {
        note("unroll_max_trip=" + std::to_string(k->unroll_value()));
      }
      if (!applied.empty()) {
        r.tuned = std::move(applied);
        svc_metrics().tuner_applied.inc();
      }
    }
  }

  // Deterministic scheduling + fault injection. Traces are keyed on the
  // source hash mixed with the optimization config (the optimized
  // program has different step counts), so a stale trace against edited
  // code or a different opt level is refused up front.
  cfg.schedule = job.schedule;
  cfg.perturb_seed = job.perturb_seed;
  cfg.program_hash = opt::mix_hash(replay::fnv1a(job.source),
                                   copts.opt_level, copts.unroll_max_trip);
  std::shared_ptr<replay::Trace> trace;
  if (job.schedule == replay::ScheduleMode::kReplay) {
    std::string terr;
    auto parsed = replay::Trace::parse(job.replay_trace, &terr);
    if (!parsed) {
      r.status = JobStatus::kRejected;
      r.error = "bad replay trace: " + terr;
      r.run_ms = ms_since(t0);
      return r;
    }
    trace = std::make_shared<replay::Trace>(std::move(*parsed));
    cfg.replay_trace = trace;
  }
  if (!job.fault_spec.empty()) {
    std::string ferr;
    if (!replay::parse_fault_spec(job.fault_spec, &cfg.fault, &ferr)) {
      r.status = JobStatus::kRejected;
      r.error = ferr;
      r.run_ms = ms_since(t0);
      return r;
    }
  }

  RunResult run = lol::run(*compiled.program, cfg);
  if (job.backend == Backend::kJit) {
    // A first JIT run memoized sealed machine code on the cached
    // program; fold those bytes into the compile cache's byte budget.
    cache_.recharge(job.source, copts);
  }
  const double claim_start = queue_ms + compile_ms;
  r.trace.push_back({"claim", claim_start, run.claim_ms});
  r.trace.push_back({"run", claim_start + run.claim_ms, run.exec_ms});
  r.pe_output = std::move(run.pe_output);
  r.pe_errout = std::move(run.pe_errout);
  r.schedule_trace = std::move(run.schedule_trace);
  // A completed run beats a late abort; otherwise the abort reason (set
  // before the token fired) decides how the failure is reported.
  int reason = inflight.abort_reason.load(std::memory_order_acquire);
  if (run.ok) {
    r.status = JobStatus::kOk;
  } else if (reason == kReasonCancel) {
    r.status = JobStatus::kCancelled;
    r.error = "cancelled while running";
  } else if (reason == kReasonDeadline) {
    r.status = JobStatus::kDeadlineExceeded;
    r.error = "deadline exceeded (job aborted)";  // worker adds the budget
  } else if (run.pe_failed) {
    r.status = JobStatus::kPeFailed;
    r.error = run.first_error();
  } else if (run.replay_diverged) {
    r.status = JobStatus::kReplayDiverged;
    r.error = run.first_error();
  } else if (run.step_limited) {
    r.status = JobStatus::kStepLimit;
    r.error = run.first_error();
  } else {
    r.status = JobStatus::kRuntimeError;
    r.error = run.first_error();
  }
  r.run_ms = ms_since(t0);
  // Whatever execute() spent past the gang join — output moves, status
  // classification — is the drain phase.
  double drain_ms =
      r.run_ms - compile_ms - run.claim_ms - run.exec_ms;
  if (drain_ms < 0.0) drain_ms = 0.0;
  r.trace.push_back({"drain", queue_ms + r.run_ms - drain_ms, drain_ms});
  return r;
}

bool Service::cancel(JobId id) {
  std::unique_lock<std::mutex> g(m_);
  // Still queued? Remove it; it never runs.
  for (auto& [name, ts] : tenants_) {
    for (auto it = ts.q.begin(); it != ts.q.end(); ++it) {
      if (it->id != id) continue;
      Pending p = std::move(*it);
      ts.q.erase(it);
      --queued_total_;
      svc_metrics().queue_depth.sub(1);
      counts_.cancelled.fetch_add(1, std::memory_order_relaxed);
      if (ts.q.empty()) {
        // Reap the drained tenant now rather than leaving it parked in
        // the rotation until the next pop (which may never come).
        auto rit = std::find(rotation_.begin(), rotation_.end(), &ts);
        if (rit != rotation_.end()) rotation_.erase(rit);
        std::string key = name;
        tenants_.erase(key);
      }
      g.unlock();
      not_full_.notify_one();
      JobResult r;
      r.id = p.id;
      r.name = p.job.name;
      r.tenant = p.job.tenant;
      r.status = JobStatus::kCancelled;
      r.error = "cancelled while queued";
      r.trace.push_back({"queued", 0.0, ms_since(p.enqueued)});
      svc_metrics().done_by_status.with(to_string(r.status)).inc();
      deliver(p, std::move(r));
      return true;
    }
  }
  // In flight? Abort its runtime through the shared token.
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  std::shared_ptr<Inflight> inflight = it->second;
  g.unlock();
  int expected = kReasonNone;
  inflight->abort_reason.compare_exchange_strong(expected, kReasonCancel,
                                                 std::memory_order_acq_rel);
  // Fire even if the deadline reaper won the race — request() is
  // idempotent and the job must still die.
  inflight->token.request();
  return true;
}

void Service::arm_deadline(std::chrono::steady_clock::time_point when,
                           const std::shared_ptr<Inflight>& inflight) {
  {
    std::lock_guard<std::mutex> g(reaper_m_);
    reap_.push(ReapEntry{when, inflight});
  }
  reaper_cv_.notify_one();
}

void Service::reaper_loop() {
  std::unique_lock<std::mutex> g(reaper_m_);
  for (;;) {
    if (reaper_stop_) return;
    if (reap_.empty()) {
      reaper_cv_.wait(g, [&] { return reaper_stop_ || !reap_.empty(); });
      continue;
    }
    auto when = reap_.top().when;
    if (std::chrono::steady_clock::now() < when) {
      // Wake on the next expiry, a new (possibly earlier) entry, or stop;
      // the loop re-evaluates whichever happened.
      reaper_cv_.wait_until(g, when);
      continue;
    }
    ReapEntry e = reap_.top();
    reap_.pop();
    g.unlock();
    if (!e.inflight->done.load(std::memory_order_acquire)) {
      int expected = kReasonNone;
      if (e.inflight->abort_reason.compare_exchange_strong(
              expected, kReasonDeadline, std::memory_order_acq_rel)) {
        e.inflight->token.request();
      }
    }
    g.lock();
  }
}

void Service::deliver(Pending& p, JobResult r) {
  if (p.on_done) {
    try {
      p.on_done(r);
    } catch (...) {
      // A throwing callback must not kill the worker or drop the future.
    }
  }
  p.promise.set_value(std::move(r));
}

void Service::record(const JobResult& r) {
  // Lock-free: workers record results without touching m_, so a result
  // landing never contends with submitters or monitoring scrapes.
  auto bump = [](std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  };
  bump(counts_.completed);
  switch (r.status) {
    case JobStatus::kOk: bump(counts_.ok); break;
    case JobStatus::kCompileError: bump(counts_.compile_errors); break;
    case JobStatus::kRuntimeError: bump(counts_.runtime_errors); break;
    case JobStatus::kStepLimit: bump(counts_.step_limited); break;
    case JobStatus::kDeadlineExceeded:
      bump(counts_.deadline_exceeded);
      svc_metrics().deadline_by_tenant.with(r.tenant).inc();
      break;
    case JobStatus::kCancelled: bump(counts_.cancelled); break;
    case JobStatus::kRejected: break;       // bad trace/fault spec refusal
    case JobStatus::kQuotaExceeded: break;  // never ran; never reaches here
    case JobStatus::kPeFailed: bump(counts_.pe_failed); break;
    case JobStatus::kReplayDiverged: bump(counts_.replay_diverged); break;
  }
  svc_metrics().done_by_status.with(to_string(r.status)).inc();
  svc_metrics().queue_wait_ms.observe(r.queue_ms);
  svc_metrics().total_ms.observe(r.queue_ms + r.run_ms);
}

Service::Stats Service::stats() const {
  // Assembled from relaxed loads — no service mutex, so a monitoring
  // scrape can never stall submitters or workers (the old snapshot
  // copied stats_ under m_). The cache keeps its own (cold) lock.
  auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  Stats s;
  s.submitted = load(counts_.submitted);
  s.completed = load(counts_.completed);
  s.ok = load(counts_.ok);
  s.compile_errors = load(counts_.compile_errors);
  s.runtime_errors = load(counts_.runtime_errors);
  s.step_limited = load(counts_.step_limited);
  s.deadline_exceeded = load(counts_.deadline_exceeded);
  s.cancelled = load(counts_.cancelled);
  s.rejected = load(counts_.rejected);
  s.quota_rejected = load(counts_.quota_rejected);
  s.pe_failed = load(counts_.pe_failed);
  s.replay_diverged = load(counts_.replay_diverged);
  s.cache = cache_.stats();
  return s;
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> g(m_);
  return queued_total_;
}

std::size_t Service::running_depth() const {
  std::lock_guard<std::mutex> g(m_);
  return running_.size();
}

}  // namespace lol::service

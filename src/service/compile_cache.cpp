#include "service/compile_cache.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "opt/opt.hpp"
#include "support/error.hpp"

namespace lol::service {

namespace {

/// Registry mirrors of the per-cache Stats (cold path: every update
/// already holds the cache mutex).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& resident_bytes;
  CacheMetrics()
      : hits(obs::Registry::global().counter(
            "lol_compile_cache_hits_total",
            "Compile-cache lookups served from a resident entry")),
        misses(obs::Registry::global().counter(
            "lol_compile_cache_misses_total",
            "Compile-cache lookups that had to compile")),
        evictions(obs::Registry::global().counter(
            "lol_compile_cache_evictions_total",
            "Entries evicted by the LRU count/byte budgets")),
        resident_bytes(obs::Registry::global().gauge(
            "lol_compile_cache_resident_bytes",
            "Estimated footprint of resident compile-cache entries")) {}
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::uint64_t hash_source(std::string_view source) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (char c : source) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t cache_key(std::string_view source, const CompileOptions& opts) {
  return opt::mix_hash(hash_source(source), opts.opt_level,
                       opts.unroll_max_trip);
}

namespace {

bool same_options(const CompileOptions& a, const CompileOptions& b) {
  return a.opt_level == b.opt_level && a.unroll_max_trip == b.unroll_max_trip;
}

}  // namespace

CompileCache::CompileCache(std::size_t capacity, std::size_t capacity_bytes)
    : capacity_(capacity == 0 ? 1 : capacity),
      capacity_bytes_(capacity_bytes) {}

CompileCache::~CompileCache() {
  cache_metrics().resident_bytes.sub(
      static_cast<std::int64_t>(resident_bytes_));
}

void CompileCache::evict_while_over_budget_locked() {
  // Evict from the LRU tail until both budgets hold, but never the
  // most recent entry: an over-budget source stays resident until the
  // next insertion instead of thrashing on every request for it.
  while (entries_.size() > 1 &&
         (entries_.size() > capacity_ ||
          (capacity_bytes_ != 0 && resident_bytes_ > capacity_bytes_))) {
    std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    cache_metrics().resident_bytes.sub(
        static_cast<std::int64_t>(it->second.bytes));
    entries_.erase(it);
    ++stats_.evictions;
    cache_metrics().evictions.inc();
  }
}

CachedCompile CompileCache::get_or_compile(const std::string& source,
                                           const CompileOptions& opts,
                                           bool* hit) {
  const std::uint64_t key = cache_key(source, opts);
  std::shared_future<CachedCompile> fut;
  std::promise<CachedCompile> mine;
  bool i_compile = false;

  {
    std::lock_guard<std::mutex> g(m_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.source == source &&
        same_options(it->second.opts, opts)) {
      ++stats_.hits;
      cache_metrics().hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      fut = it->second.result;
      if (hit != nullptr) *hit = true;
    } else if (it != entries_.end()) {
      // True 64-bit collision: different source, same hash. Vanishingly
      // rare — compile uncached rather than evict the resident entry.
      ++stats_.misses;
      cache_metrics().misses.inc();
      if (hit != nullptr) *hit = false;
      i_compile = true;
    } else {
      ++stats_.misses;
      cache_metrics().misses.inc();
      if (hit != nullptr) *hit = false;
      i_compile = true;
      // Publish the future before compiling so concurrent requests for
      // the same source wait on it instead of compiling again.
      fut = mine.get_future().share();
      lru_.push_front(key);
      std::size_t bytes = charged_bytes(source.size());
      entries_.emplace(key, Entry{source, opts, fut, lru_.begin(), bytes});
      resident_bytes_ += bytes;
      cache_metrics().resident_bytes.add(static_cast<std::int64_t>(bytes));
      evict_while_over_budget_locked();
    }
  }

  if (!i_compile) return fut.get();

  CachedCompile out;
  try {
    out.program = std::make_shared<const CompiledProgram>(
        compile(source, opts));
  } catch (const std::exception& e) {
    // Mostly support::LolError; anything else still must resolve the
    // published future or concurrent waiters would hang.
    out.error = e.what();
  }
  if (fut.valid()) mine.set_value(out);  // collision path never published
  return out;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> g(m_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> g(m_);
  return entries_.size();
}

std::size_t CompileCache::resident_bytes() const {
  std::lock_guard<std::mutex> g(m_);
  return resident_bytes_;
}

void CompileCache::recharge(const std::string& source,
                            const CompileOptions& opts) {
  const std::uint64_t key = cache_key(source, opts);
  std::lock_guard<std::mutex> g(m_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.source != source ||
      !same_options(it->second.opts, opts)) {
    return;
  }
  Entry& e = it->second;
  if (e.result.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return;
  }
  const CachedCompile& c = e.result.get();
  if (c.program == nullptr) return;
  std::size_t now = charged_bytes(source.size()) + c.program->jit_code_bytes();
  if (now == e.bytes) return;
  resident_bytes_ += now;
  resident_bytes_ -= e.bytes;
  cache_metrics().resident_bytes.add(static_cast<std::int64_t>(now) -
                                     static_cast<std::int64_t>(e.bytes));
  e.bytes = now;
  evict_while_over_budget_locked();
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> g(m_);
  entries_.clear();
  lru_.clear();
  cache_metrics().resident_bytes.sub(
      static_cast<std::int64_t>(resident_bytes_));
  resident_bytes_ = 0;
}

}  // namespace lol::service

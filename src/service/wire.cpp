#include "service/wire.hpp"

#if !defined(_WIN32)
#include <sys/socket.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lol::service::wire {

namespace {

constexpr int kMaxDepth = 32;

/// Cursor over the input with one-token-lookahead helpers.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': out.kind = Json::Kind::kString; return parse_string(out.str);
      case 't':
        if (text.substr(pos, 4) == "true") {
          pos += 4;
          out.kind = Json::Kind::kBool;
          out.b = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") {
          pos += 5;
          out.kind = Json::Kind::kBool;
          out.b = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") {
          pos += 4;
          out.kind = Json::Kind::kNull;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — good enough for a wire
          // format whose payloads are LOLCODE text).
          if (v < 0x80) {
            out += static_cast<char>(v);
          } else if (v < 0x800) {
            out += static_cast<char>(0xC0 | (v >> 6));
            out += static_cast<char>(0x80 | (v & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (v >> 12));
            out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (v & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    skip_ws();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected value");
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("bad number");
    out.kind = Json::Kind::kNumber;
    out.num = v;
    return true;
  }

  bool parse_array(Json& out, int depth) {
    out.kind = Json::Kind::kArray;
    if (!eat('[')) return fail("expected array");
    if (eat(']')) return true;
    for (;;) {
      Json v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr.push_back(std::move(v));
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json& out, int depth) {
    out.kind = Json::Kind::kObject;
    if (!eat('{')) return fail("expected object");
    if (eat('}')) return true;
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!eat(':')) return fail("expected ':'");
      Json v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }
};

/// Reads an unsigned integer member with a default. Untrusted input:
/// non-finite, negative or absurdly large numbers fall back — casting
/// inf/1e400 to uint64_t would be undefined behavior.
std::uint64_t u64_or(const Json& obj, std::string_view key,
                     std::uint64_t fallback) {
  constexpr double kMax = 9.0e18;  // < 2^63, exactly representable
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is(Json::Kind::kNumber)) return fallback;
  double d = v->num;
  if (!std::isfinite(d) || d < 0 || d > kMax) return fallback;
  return static_cast<std::uint64_t>(d);
}

std::string str_or(const Json& obj, std::string_view key,
                   std::string fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr || !v->is(Json::Kind::kString)) return fallback;
  return v->str;
}

std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ',';
    out += quote(items[i]);
  }
  out += ']';
  return out;
}

std::string fmt_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

const Json* Json::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<Json> parse_json(std::string_view text, std::string* error) {
  Parser p{text};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing characters after JSON value";
    return std::nullopt;
  }
  return out;
}

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error) {
  auto doc = parse_json(line, error);
  if (!doc) return std::nullopt;
  if (!doc->is(Json::Kind::kObject)) {
    if (error != nullptr) *error = "request must be a JSON object";
    return std::nullopt;
  }
  std::string op = str_or(*doc, "op", "");
  Request req;
  if (op == "submit") {
    req.op = Request::Op::kSubmit;
    const Json* src = doc->find("source");
    if (src == nullptr || !src->is(Json::Kind::kString)) {
      if (error != nullptr) *error = "submit requires a string 'source'";
      return std::nullopt;
    }
    req.job.source = src->str;
    req.job.name = str_or(*doc, "name", "anonymous");
    req.job.tenant = str_or(*doc, "tenant", "");
    // The service clamps to its max_pes; this bound only keeps the
    // u64->int narrowing well-behaved for hostile values.
    req.job.n_pes = static_cast<int>(
        std::min<std::uint64_t>(u64_or(*doc, "n_pes", 1), 4096));
    req.job.seed = u64_or(*doc, "seed", req.job.seed);
    req.job.max_steps = u64_or(*doc, "max_steps", 0);
    req.job.deadline_ms = u64_or(*doc, "deadline_ms", 0);
    req.job.heap_bytes = static_cast<std::size_t>(
        u64_or(*doc, "heap_bytes", req.job.heap_bytes));
    std::string backend = str_or(*doc, "backend", "vm");
    if (auto b = backend_from_name(backend)) {
      req.job.backend = *b;
    } else {
      if (error != nullptr) *error = "unknown backend '" + backend + "'";
      return std::nullopt;
    }
    std::string executor =
        str_or(*doc, "executor", shmem::to_string(req.job.executor));
    if (auto e = shmem::executor_from_name(executor)) {
      req.job.executor = *e;
    } else {
      if (error != nullptr) *error = "unknown executor '" + executor + "'";
      return std::nullopt;
    }
    // Same narrowing guard as n_pes; the engine treats 0 as auto.
    req.job.pes_per_thread = static_cast<int>(
        std::min<std::uint64_t>(u64_or(*doc, "pes_per_thread", 0), 4096));
    // Combining-tree fan-in; < 2 means auto, results are radix-invariant.
    req.job.barrier_radix = static_cast<int>(
        std::min<std::uint64_t>(u64_or(*doc, "barrier_radix", 0), 4096));
    // Optimization level. Unlike the lenient numeric knobs above, a
    // malformed value is a protocol error: silently compiling at a
    // different level than the client asked for would change step
    // counts under it (unrolling re-shapes loops), so "opt_level":-1
    // or "opt_level":"max" must be refused, not defaulted.
    if (const Json* lvl = doc->find("opt_level"); lvl != nullptr) {
      bool valid = lvl->is(Json::Kind::kNumber) && std::isfinite(lvl->num) &&
                   lvl->num == std::floor(lvl->num) && lvl->num >= 0.0 &&
                   lvl->num <= 2.0;
      if (!valid) {
        if (error != nullptr) {
          *error = "opt_level must be an integer in 0..2";
        }
        return std::nullopt;
      }
      req.job.opt_level = static_cast<int>(lvl->num);
    }
    if (const Json* lines = doc->find("stdin");
        lines != nullptr && lines->is(Json::Kind::kArray)) {
      for (const Json& l : lines->arr) {
        if (l.is(Json::Kind::kString)) req.job.stdin_lines.push_back(l.str);
      }
    }
    // Deterministic scheduling + fault injection. "schedule" and the
    // trace/fault payloads are validated by the service (bad values
    // resolve the job as kRejected with a diagnostic), except the mode
    // name itself, which is a protocol error like an unknown backend.
    std::string schedule = str_or(*doc, "schedule", "none");
    if (schedule == "none") {
      req.job.schedule = replay::ScheduleMode::kNone;
    } else if (schedule == "record") {
      req.job.schedule = replay::ScheduleMode::kRecord;
    } else if (schedule == "perturb") {
      req.job.schedule = replay::ScheduleMode::kPerturb;
    } else if (schedule == "replay") {
      req.job.schedule = replay::ScheduleMode::kReplay;
    } else {
      if (error != nullptr) *error = "unknown schedule '" + schedule + "'";
      return std::nullopt;
    }
    req.job.perturb_seed = u64_or(*doc, "perturb_seed", 0);
    req.job.replay_trace = str_or(*doc, "replay", "");
    req.job.fault_spec = str_or(*doc, "fault", "");
    return req;
  }
  if (op == "cancel") {
    req.op = Request::Op::kCancel;
    req.id = u64_or(*doc, "id", 0);
    if (req.id == 0) {
      if (error != nullptr) *error = "cancel requires a numeric 'id'";
      return std::nullopt;
    }
    return req;
  }
  if (op == "stats") {
    req.op = Request::Op::kStats;
    return req;
  }
  if (op == "metrics") {
    req.op = Request::Op::kMetrics;
    return req;
  }
  if (op == "ping") {
    req.op = Request::Op::kPing;
    return req;
  }
  if (op == "shutdown") {
    req.op = Request::Op::kShutdown;
    return req;
  }
  if (error != nullptr) *error = "unknown op '" + op + "'";
  return std::nullopt;
}

const char* backend_name(Backend b) { return lol::to_string(b); }

#if !defined(_WIN32)

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::optional<std::string> LineReader::next() {
  for (;;) {
    std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buf_.size() > max_line_) {
      // A multi-MiB line with no newline is not a protocol client.
      too_long_ = true;
      return std::nullopt;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;  // peer closed (or socket shut down)
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

#endif  // !_WIN32

std::string submit_line(const Job& job) {
  auto n = [](std::uint64_t v) { return std::to_string(v); };
  return "{\"op\":\"submit\",\"name\":" + quote(job.name) +
         ",\"source\":" + quote(job.source) +
         ",\"tenant\":" + quote(job.tenant) +
         ",\"n_pes\":" + std::to_string(job.n_pes) +
         ",\"backend\":\"" + backend_name(job.backend) + "\"" +
         ",\"executor\":\"" + shmem::to_string(job.executor) + "\"" +
         ",\"pes_per_thread\":" + std::to_string(job.pes_per_thread) +
         ",\"barrier_radix\":" + std::to_string(job.barrier_radix) +
         ",\"opt_level\":" + std::to_string(job.opt_level) +
         ",\"seed\":" + n(job.seed) + ",\"max_steps\":" + n(job.max_steps) +
         ",\"deadline_ms\":" + n(job.deadline_ms) +
         ",\"heap_bytes\":" + n(job.heap_bytes) +
         ",\"schedule\":\"" + replay::to_string(job.schedule) + "\"" +
         ",\"perturb_seed\":" + n(job.perturb_seed) +
         ",\"replay\":" + quote(job.replay_trace) +
         ",\"fault\":" + quote(job.fault_spec) +
         ",\"stdin\":" + json_array(job.stdin_lines) + "}";
}

std::string cancel_request_line(JobId id) {
  return "{\"op\":\"cancel\",\"id\":" + std::to_string(id) + "}";
}

std::string request_line(const Request& req) {
  switch (req.op) {
    case Request::Op::kSubmit: return submit_line(req.job);
    case Request::Op::kCancel: return cancel_request_line(req.id);
    case Request::Op::kStats: return "{\"op\":\"stats\"}";
    case Request::Op::kMetrics: return "{\"op\":\"metrics\"}";
    case Request::Op::kPing: return "{\"op\":\"ping\"}";
    case Request::Op::kShutdown: return "{\"op\":\"shutdown\"}";
  }
  return "{\"op\":\"ping\"}";
}

std::string accepted_line(JobId id, const Job& job) {
  return "{\"event\":\"accepted\",\"id\":" + std::to_string(id) +
         ",\"name\":" + quote(job.name) +
         ",\"tenant\":" + quote(job.tenant) + "}";
}

std::string result_line(const JobResult& r) {
  std::string out = "{\"event\":\"done\",\"id\":" + std::to_string(r.id) +
                    ",\"name\":" + quote(r.name) +
                    ",\"tenant\":" + quote(r.tenant) + ",\"status\":\"" +
                    to_string(r.status) + "\",\"error\":" + quote(r.error) +
                    ",\"cached\":" + (r.compile_cache_hit ? "true" : "false") +
                    ",\"queue_ms\":" + fmt_ms(r.queue_ms) +
                    ",\"run_ms\":" + fmt_ms(r.run_ms) + ",\"trace\":[";
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const TraceSpan& sp = r.trace[i];
    if (i != 0) out += ',';
    out += "{\"span\":" + quote(sp.name) +
           ",\"start_ms\":" + fmt_ms(sp.start_ms) +
           ",\"dur_ms\":" + fmt_ms(sp.dur_ms) + "}";
  }
  out += "],\"output\":" + json_array(r.pe_output) +
         ",\"errout\":" + json_array(r.pe_errout);
  if (!r.schedule_trace.empty()) {
    out += ",\"sched_trace\":" + quote(r.schedule_trace);
  }
  if (!r.tuned.empty()) {
    out += ",\"tuned\":" + quote(r.tuned);
  }
  out += "}";
  return out;
}

std::string cancel_line(JobId id, bool ok) {
  return "{\"event\":\"cancel\",\"id\":" + std::to_string(id) +
         ",\"ok\":" + (ok ? "true" : "false") + "}";
}

std::string stats_line(const Service::Stats& s) {
  auto n = [](std::uint64_t v) { return std::to_string(v); };
  return "{\"event\":\"stats\",\"submitted\":" + n(s.submitted) +
         ",\"completed\":" + n(s.completed) + ",\"ok\":" + n(s.ok) +
         ",\"compile_errors\":" + n(s.compile_errors) +
         ",\"runtime_errors\":" + n(s.runtime_errors) +
         ",\"step_limited\":" + n(s.step_limited) +
         ",\"deadline_exceeded\":" + n(s.deadline_exceeded) +
         ",\"cancelled\":" + n(s.cancelled) +
         ",\"rejected\":" + n(s.rejected) +
         ",\"quota_rejected\":" + n(s.quota_rejected) +
         ",\"pe_failed\":" + n(s.pe_failed) +
         ",\"replay_diverged\":" + n(s.replay_diverged) +
         ",\"cache_hits\":" + n(s.cache.hits) +
         ",\"cache_misses\":" + n(s.cache.misses) +
         ",\"cache_evictions\":" + n(s.cache.evictions) + "}";
}

std::string metrics_line(std::string_view exposition) {
  return "{\"event\":\"metrics\",\"text\":" + quote(exposition) + "}";
}

std::string pong_line() { return "{\"event\":\"pong\"}"; }

std::string bye_line() { return "{\"event\":\"bye\"}"; }

std::string error_line(std::string_view message) {
  return "{\"event\":\"error\",\"message\":" + quote(message) + "}";
}

}  // namespace lol::service::wire

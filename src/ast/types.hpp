// Shared enumerations for the AST: LOLCODE value types, address-space
// qualifiers, and operator kinds.
#pragma once

#include <string_view>

namespace lol::ast {

/// The five LOLCODE-1.2 value types.
enum class TypeKind { kNoob, kTroof, kNumbr, kNumbar, kYarn };

/// Canonical LOLCODE spelling ("NUMBR", ...).
std::string_view type_name(TypeKind t);

/// Address-space qualifier on a variable reference (paper Table II):
/// `UR x` refers to the predicated remote PE's instance of symmetric `x`;
/// `MAH x` (or no qualifier) refers to the local instance.
enum class Locality { kDefault, kLocal, kRemote };

/// Binary operators (all prefix-form: `OP expr AN expr`).
enum class BinOp {
  kSum,       // SUM OF       — addition
  kDiff,      // DIFF OF      — subtraction
  kProdukt,   // PRODUKT OF   — multiplication
  kQuoshunt,  // QUOSHUNT OF  — division
  kMod,       // MOD OF       — modulo
  kBiggr,     // BIGGR OF     — max
  kSmallr,    // SMALLR OF    — min
  kBothSaem,  // BOTH SAEM    — equality
  kDiffrint,  // DIFFRINT     — inequality
  kBigger,    // BIGGER       — strict greater-than (paper Table I)
  kSmallrCmp, // SMALLR       — strict less-than (paper Table I)
  kBothOf,    // BOTH OF      — logical and
  kEitherOf,  // EITHER OF    — logical or
  kWonOf,     // WON OF       — logical xor
};

/// Canonical spelling of a binary operator.
std::string_view bin_op_name(BinOp op);

/// Variadic operators terminated by MKAY.
enum class NaryOp {
  kAllOf,   // ALL OF — and-reduction
  kAnyOf,   // ANY OF — or-reduction
  kSmoosh,  // SMOOSH — string concatenation
};

std::string_view nary_op_name(NaryOp op);

/// Unary operators.
enum class UnOp {
  kNot,      // NOT
  kSquar,    // SQUAR OF   — x*x (paper Table III)
  kUnsquar,  // UNSQUAR OF — sqrt(x) (paper Table III)
  kFlip,     // FLIP OF    — 1/x (paper Table III)
};

std::string_view un_op_name(UnOp op);

}  // namespace lol::ast

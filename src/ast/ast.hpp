// AST node definitions for LOLCODE-1.2 + the parallel extensions.
//
// Ownership: every node owns its children through std::unique_ptr.
// Dispatch: nodes carry a kind enum; consumers switch on it and
// static_cast to the concrete type (LLVM-style), which keeps the node
// classes free of visitor boilerplate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ast/types.hpp"
#include "lex/token.hpp"
#include "support/source_location.hpp"

namespace lol::ast {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kNumbrLit,
  kNumbarLit,
  kTroofLit,
  kNoobLit,
  kYarnLit,
  kVarRef,
  kSrsRef,
  kIndex,
  kItRef,
  kMe,
  kMahFrenz,
  kWhatevr,
  kWhatevar,
  kBinary,
  kNary,
  kUnary,
  kCast,
  kCall,
};

/// Base of all expression nodes.
struct Expr {
  explicit Expr(ExprKind k, support::SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  const ExprKind kind;
  const support::SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Integer literal, e.g. `42`.
struct NumbrLit : Expr {
  NumbrLit(std::int64_t v, support::SourceLoc l)
      : Expr(ExprKind::kNumbrLit, l), value(v) {}
  std::int64_t value;
};

/// Floating-point literal, e.g. `0.001`.
struct NumbarLit : Expr {
  NumbarLit(double v, support::SourceLoc l)
      : Expr(ExprKind::kNumbarLit, l), value(v) {}
  double value;
};

/// WIN / FAIL.
struct TroofLit : Expr {
  TroofLit(bool v, support::SourceLoc l)
      : Expr(ExprKind::kTroofLit, l), value(v) {}
  bool value;
};

/// The NOOB literal.
struct NoobLit : Expr {
  explicit NoobLit(support::SourceLoc l) : Expr(ExprKind::kNoobLit, l) {}
};

/// String literal; may contain `:{var}` interpolation segments that are
/// resolved against the environment at evaluation time.
struct YarnLit : Expr {
  YarnLit(std::vector<lex::YarnSegment> segs, support::SourceLoc l)
      : Expr(ExprKind::kYarnLit, l), segments(std::move(segs)) {}
  std::vector<lex::YarnSegment> segments;

  /// True when the literal has no interpolations (a plain string).
  [[nodiscard]] bool is_plain() const {
    for (const auto& s : segments)
      if (s.is_var) return false;
    return true;
  }
  /// The literal text (only valid when is_plain()).
  [[nodiscard]] std::string plain_text() const {
    std::string out;
    for (const auto& s : segments) out += s.text;
    return out;
  }
};

/// A named variable reference, optionally qualified with UR (remote
/// address space under TXT MAH BFF predication) or MAH (explicitly local).
struct VarRef : Expr {
  VarRef(std::string n, Locality loc_q, support::SourceLoc l)
      : Expr(ExprKind::kVarRef, l), name(std::move(n)), locality(loc_q) {}
  std::string name;
  Locality locality;
};

/// `SRS expr` — the value of expr (cast to YARN) names the variable.
struct SrsRef : Expr {
  SrsRef(ExprPtr e, Locality loc_q, support::SourceLoc l)
      : Expr(ExprKind::kSrsRef, l), name_expr(std::move(e)),
        locality(loc_q) {}
  ExprPtr name_expr;
  Locality locality;
};

/// `base'Z index` — array element access (paper array extension).
struct IndexExpr : Expr {
  IndexExpr(ExprPtr b, ExprPtr i, support::SourceLoc l)
      : Expr(ExprKind::kIndex, l), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base;   // VarRef or SrsRef
  ExprPtr index;  // any expression
};

/// The implicit IT variable (most recent bare-expression value).
struct ItRef : Expr {
  explicit ItRef(support::SourceLoc l) : Expr(ExprKind::kItRef, l) {}
};

/// `ME` — the executing PE id (paper Table II).
struct MeExpr : Expr {
  explicit MeExpr(support::SourceLoc l) : Expr(ExprKind::kMe, l) {}
};

/// `MAH FRENZ` — total number of PEs (paper Table II).
struct MahFrenzExpr : Expr {
  explicit MahFrenzExpr(support::SourceLoc l) : Expr(ExprKind::kMahFrenz, l) {}
};

/// `WHATEVR` — random NUMBR (paper Table III).
struct WhatevrExpr : Expr {
  explicit WhatevrExpr(support::SourceLoc l) : Expr(ExprKind::kWhatevr, l) {}
};

/// `WHATEVAR` — random NUMBAR in [0,1) (paper Table III).
struct WhatevarExpr : Expr {
  explicit WhatevarExpr(support::SourceLoc l)
      : Expr(ExprKind::kWhatevar, l) {}
};

/// Prefix binary operation: `SUM OF a AN b`.
struct BinaryExpr : Expr {
  BinaryExpr(BinOp o, ExprPtr a, ExprPtr b, support::SourceLoc l)
      : Expr(ExprKind::kBinary, l), op(o), lhs(std::move(a)),
        rhs(std::move(b)) {}
  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Variadic operation: `ALL OF a AN b AN c MKAY`.
struct NaryExpr : Expr {
  NaryExpr(NaryOp o, std::vector<ExprPtr> ops, support::SourceLoc l)
      : Expr(ExprKind::kNary, l), op(o), operands(std::move(ops)) {}
  NaryOp op;
  std::vector<ExprPtr> operands;
};

/// Unary operation: `NOT x`, `SQUAR OF x`, ...
struct UnaryExpr : Expr {
  UnaryExpr(UnOp o, ExprPtr v, support::SourceLoc l)
      : Expr(ExprKind::kUnary, l), op(o), operand(std::move(v)) {}
  UnOp op;
  ExprPtr operand;
};

/// `MAEK expr A type` — explicit cast.
struct CastExpr : Expr {
  CastExpr(ExprPtr v, TypeKind t, support::SourceLoc l)
      : Expr(ExprKind::kCast, l), value(std::move(v)), type(t) {}
  ExprPtr value;
  TypeKind type;
};

/// `I IZ name [YR a [AN YR b ...]] MKAY` — function call.
struct CallExpr : Expr {
  CallExpr(std::string c, std::vector<ExprPtr> a, support::SourceLoc l)
      : Expr(ExprKind::kCall, l), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kVarDecl,
  kAssign,
  kExpr,
  kVisible,
  kGimmeh,
  kCastTo,  // IS NOW A
  kORly,
  kWtf,
  kLoop,
  kGtfo,
  kFoundYr,
  kFuncDef,
  kCanHas,
  kHugz,
  kLock,
  kTxt,
};

/// Base of all statement nodes.
struct Stmt {
  explicit Stmt(StmtKind k, support::SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  const StmtKind kind;
  const support::SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Declaration scope: `I HAS A` (private) vs `WE HAS A` (symmetric PGAS
/// object, paper Table II).
enum class DeclScope { kPrivate, kSymmetric };

/// `I HAS A x [ITZ ...] [AN ITZ ...] [AN THAR IZ n] [AN IM SHARIN IT]`.
/// One node covers plain variables, statically typed variables (SRSLY),
/// arrays (LOTZ A), symmetric objects (WE HAS A) and lock attachment
/// (IM SHARIN IT).
struct VarDeclStmt : Stmt {
  VarDeclStmt(support::SourceLoc l) : Stmt(StmtKind::kVarDecl, l) {}
  DeclScope scope = DeclScope::kPrivate;
  std::string name;
  std::optional<TypeKind> declared_type;  // from ITZ A / ITZ SRSLY A
  bool srsly = false;                     // statically typed (paper ext.)
  bool is_array = false;                  // LOTZ A ... (paper ext.)
  ExprPtr array_size;                     // from THAR IZ (paper ext.)
  ExprPtr init;                           // from ITZ <expr>
  bool sharin = false;                    // IM SHARIN IT (paper ext.)
};

/// `target R value`.
struct AssignStmt : Stmt {
  AssignStmt(ExprPtr t, ExprPtr v, support::SourceLoc l)
      : Stmt(StmtKind::kAssign, l), target(std::move(t)),
        value(std::move(v)) {}
  ExprPtr target;  // VarRef / SrsRef / IndexExpr (validated by parser)
  ExprPtr value;
};

/// A bare expression; its value lands in IT.
struct ExprStmt : Stmt {
  ExprStmt(ExprPtr e, support::SourceLoc l)
      : Stmt(StmtKind::kExpr, l), expr(std::move(e)) {}
  ExprPtr expr;
};

/// `VISIBLE a b c [!]` / `INVISIBLE ...` — print args (cast to YARN,
/// concatenated); `!` suppresses the trailing newline.
struct VisibleStmt : Stmt {
  VisibleStmt(support::SourceLoc l) : Stmt(StmtKind::kVisible, l) {}
  std::vector<ExprPtr> args;
  bool newline = true;
  bool to_stderr = false;  // INVISIBLE
};

/// `GIMMEH target` — read a line of stdin into target as a YARN.
struct GimmehStmt : Stmt {
  GimmehStmt(ExprPtr t, support::SourceLoc l)
      : Stmt(StmtKind::kGimmeh, l), target(std::move(t)) {}
  ExprPtr target;
};

/// `var IS NOW A type` — in-place cast.
struct CastToStmt : Stmt {
  CastToStmt(ExprPtr t, TypeKind ty, support::SourceLoc l)
      : Stmt(StmtKind::kCastTo, l), target(std::move(t)), type(ty) {}
  ExprPtr target;
  TypeKind type;
};

/// `O RLY? YA RLY ... [MEBBE e ...]* [NO WAI ...] OIC` — branches on IT.
struct ORlyStmt : Stmt {
  ORlyStmt(support::SourceLoc l) : Stmt(StmtKind::kORly, l) {}
  StmtList ya_rly;
  std::vector<std::pair<ExprPtr, StmtList>> mebbe;
  StmtList no_wai;
};

/// `WTF? OMG lit ... [OMGWTF ...] OIC` — switches on IT with C-style
/// fallthrough; GTFO breaks.
struct WtfStmt : Stmt {
  WtfStmt(support::SourceLoc l) : Stmt(StmtKind::kWtf, l) {}
  struct Case {
    ExprPtr literal;
    StmtList body;
  };
  std::vector<Case> cases;
  StmtList default_body;
  bool has_default = false;
};

/// Loop update operation.
enum class LoopUpdate { kNone, kUppin, kNerfin, kFunc };

/// Loop condition kind.
enum class LoopCond { kInfinite, kTil, kWile };

/// `IM IN YR label [UPPIN|NERFIN|func YR var [TIL|WILE e]] ... IM OUTTA YR
/// label`. The loop variable is implicitly declared local to the loop and
/// starts at 0; the condition is checked before each iteration and the
/// update applied after the body.
struct LoopStmt : Stmt {
  LoopStmt(support::SourceLoc l) : Stmt(StmtKind::kLoop, l) {}
  std::string label;
  LoopUpdate update = LoopUpdate::kNone;
  std::string func;  // when update == kFunc
  std::string var;
  LoopCond cond_kind = LoopCond::kInfinite;
  ExprPtr cond;
  StmtList body;
};

/// `GTFO` — break the innermost loop / switch, or return NOOB.
struct GtfoStmt : Stmt {
  explicit GtfoStmt(support::SourceLoc l) : Stmt(StmtKind::kGtfo, l) {}
};

/// `FOUND YR expr` — return a value from a function.
struct FoundYrStmt : Stmt {
  FoundYrStmt(ExprPtr v, support::SourceLoc l)
      : Stmt(StmtKind::kFoundYr, l), value(std::move(v)) {}
  ExprPtr value;
};

/// `HOW IZ I name [YR p [AN YR q ...]] ... IF U SAY SO`.
struct FuncDefStmt : Stmt {
  FuncDefStmt(support::SourceLoc l) : Stmt(StmtKind::kFuncDef, l) {}
  std::string name;
  std::vector<std::string> params;
  StmtList body;
};

/// `CAN HAS LIB?` — library import (recorded; all builtins are always
/// available in this implementation).
struct CanHasStmt : Stmt {
  CanHasStmt(std::string lib, support::SourceLoc l)
      : Stmt(StmtKind::kCanHas, l), library(std::move(lib)) {}
  std::string library;
};

/// `HUGZ` — collective barrier over all PEs (paper Table II).
struct HugzStmt : Stmt {
  explicit HugzStmt(support::SourceLoc l) : Stmt(StmtKind::kHugz, l) {}
};

/// Lock operation kind (paper Table II).
enum class LockOp {
  kAcquire,  // IM SRSLY MESIN WIF — blocking; IT := WIN
  kTry,      // IM MESIN WIF       — non-blocking; IT := WIN/FAIL
  kRelease,  // DUN MESIN WIF
};

/// Lock statement on the implicit lock of a shared variable.
struct LockStmt : Stmt {
  LockStmt(LockOp o, ExprPtr t, support::SourceLoc l)
      : Stmt(StmtKind::kLock, l), op(o), target(std::move(t)) {}
  LockOp op;
  ExprPtr target;  // VarRef (possibly UR-qualified)
};

/// Thread predication (paper Table II):
///   `TXT MAH BFF e, stmt`            (single statement)
///   `TXT MAH BFF e AN STUFF ... TTYL` (block)
/// Within the dynamic extent, UR references target PE `e`.
struct TxtStmt : Stmt {
  TxtStmt(support::SourceLoc l) : Stmt(StmtKind::kTxt, l) {}
  ExprPtr target_pe;
  StmtList body;
  bool block_form = false;
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// A parsed compilation unit: `HAI [version] ... KTHXBYE`.
struct Program {
  std::optional<double> version;  // e.g. 1.2
  StmtList body;
};

}  // namespace lol::ast

// AST rendering: canonical LOLCODE pretty-printing (round-trippable
// through the parser) and a compact structural dump for golden tests.
#pragma once

#include <string>

#include "ast/ast.hpp"

namespace lol::ast {

/// Renders an expression back to canonical LOLCODE source.
std::string to_lolcode(const Expr& e);

/// Renders a statement (and children) back to canonical LOLCODE source.
/// `indent` is the current indentation depth in two-space units.
std::string to_lolcode(const Stmt& s, int indent = 0);

/// Renders a whole program (HAI ... KTHXBYE).
std::string to_lolcode(const Program& p);

/// Structural s-expression dump, e.g. `(sum (var x) (numbr 1))`. Used by
/// parser golden tests; stable across formatting changes.
std::string dump(const Expr& e);
std::string dump(const Stmt& s);
std::string dump(const Program& p);

}  // namespace lol::ast

#include "ast/types.hpp"

namespace lol::ast {

std::string_view type_name(TypeKind t) {
  switch (t) {
    case TypeKind::kNoob:
      return "NOOB";
    case TypeKind::kTroof:
      return "TROOF";
    case TypeKind::kNumbr:
      return "NUMBR";
    case TypeKind::kNumbar:
      return "NUMBAR";
    case TypeKind::kYarn:
      return "YARN";
  }
  return "?";
}

std::string_view bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::kSum:
      return "SUM OF";
    case BinOp::kDiff:
      return "DIFF OF";
    case BinOp::kProdukt:
      return "PRODUKT OF";
    case BinOp::kQuoshunt:
      return "QUOSHUNT OF";
    case BinOp::kMod:
      return "MOD OF";
    case BinOp::kBiggr:
      return "BIGGR OF";
    case BinOp::kSmallr:
      return "SMALLR OF";
    case BinOp::kBothSaem:
      return "BOTH SAEM";
    case BinOp::kDiffrint:
      return "DIFFRINT";
    case BinOp::kBigger:
      return "BIGGER";
    case BinOp::kSmallrCmp:
      return "SMALLR";
    case BinOp::kBothOf:
      return "BOTH OF";
    case BinOp::kEitherOf:
      return "EITHER OF";
    case BinOp::kWonOf:
      return "WON OF";
  }
  return "?";
}

std::string_view nary_op_name(NaryOp op) {
  switch (op) {
    case NaryOp::kAllOf:
      return "ALL OF";
    case NaryOp::kAnyOf:
      return "ANY OF";
    case NaryOp::kSmoosh:
      return "SMOOSH";
  }
  return "?";
}

std::string_view un_op_name(UnOp op) {
  switch (op) {
    case UnOp::kNot:
      return "NOT";
    case UnOp::kSquar:
      return "SQUAR OF";
    case UnOp::kUnsquar:
      return "UNSQUAR OF";
    case UnOp::kFlip:
      return "FLIP OF";
  }
  return "?";
}

}  // namespace lol::ast

#include "ast/printer.hpp"

#include <sstream>

#include "support/string_util.hpp"

namespace lol::ast {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

std::string yarn_source(const YarnLit& y) {
  std::string out = "\"";
  for (const auto& seg : y.segments) {
    if (seg.is_var) {
      out += ":{" + seg.text + "}";
      continue;
    }
    for (char c : seg.text) {
      switch (c) {
        case '\n':
          out += ":)";
          break;
        case '\t':
          out += ":>";
          break;
        case '\a':
          out += ":o";
          break;
        case '"':
          out += ":\"";
          break;
        case ':':
          out += "::";
          break;
        default:
          out += c;
      }
    }
  }
  out += "\"";
  return out;
}

std::string locality_prefix(Locality l) {
  switch (l) {
    case Locality::kRemote:
      return "UR ";
    case Locality::kLocal:
      return "MAH ";
    case Locality::kDefault:
      return "";
  }
  return "";
}

}  // namespace

std::string to_lolcode(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumbrLit:
      return support::format_numbr(static_cast<const NumbrLit&>(e).value);
    case ExprKind::kNumbarLit: {
      std::ostringstream os;
      os << static_cast<const NumbarLit&>(e).value;
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ExprKind::kTroofLit:
      return static_cast<const TroofLit&>(e).value ? "WIN" : "FAIL";
    case ExprKind::kNoobLit:
      return "NOOB";
    case ExprKind::kYarnLit:
      return yarn_source(static_cast<const YarnLit&>(e));
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRef&>(e);
      return locality_prefix(v.locality) + v.name;
    }
    case ExprKind::kSrsRef: {
      const auto& v = static_cast<const SrsRef&>(e);
      return locality_prefix(v.locality) + "SRS " + to_lolcode(*v.name_expr);
    }
    case ExprKind::kIndex: {
      const auto& v = static_cast<const IndexExpr&>(e);
      return to_lolcode(*v.base) + "'Z " + to_lolcode(*v.index);
    }
    case ExprKind::kItRef:
      return "IT";
    case ExprKind::kMe:
      return "ME";
    case ExprKind::kMahFrenz:
      return "MAH FRENZ";
    case ExprKind::kWhatevr:
      return "WHATEVR";
    case ExprKind::kWhatevar:
      return "WHATEVAR";
    case ExprKind::kBinary: {
      const auto& v = static_cast<const BinaryExpr&>(e);
      return std::string(bin_op_name(v.op)) + " " + to_lolcode(*v.lhs) +
             " AN " + to_lolcode(*v.rhs);
    }
    case ExprKind::kNary: {
      const auto& v = static_cast<const NaryExpr&>(e);
      std::string out{nary_op_name(v.op)};
      for (std::size_t i = 0; i < v.operands.size(); ++i) {
        out += (i ? " AN " : " ") + to_lolcode(*v.operands[i]);
      }
      out += " MKAY";
      return out;
    }
    case ExprKind::kUnary: {
      const auto& v = static_cast<const UnaryExpr&>(e);
      return std::string(un_op_name(v.op)) + " " + to_lolcode(*v.operand);
    }
    case ExprKind::kCast: {
      const auto& v = static_cast<const CastExpr&>(e);
      return "MAEK " + to_lolcode(*v.value) + " A " +
             std::string(type_name(v.type));
    }
    case ExprKind::kCall: {
      const auto& v = static_cast<const CallExpr&>(e);
      std::string out = "I IZ " + v.callee;
      for (std::size_t i = 0; i < v.args.size(); ++i) {
        out += (i ? " AN YR " : " YR ") + to_lolcode(*v.args[i]);
      }
      out += " MKAY";
      return out;
    }
  }
  return "<expr>";
}

namespace {

std::string body_to_lolcode(const StmtList& body, int indent) {
  std::string out;
  for (const auto& s : body) out += to_lolcode(*s, indent);
  return out;
}

}  // namespace

std::string to_lolcode(const Stmt& s, int indent) {
  const std::string pad = ind(indent);
  switch (s.kind) {
    case StmtKind::kVarDecl: {
      const auto& v = static_cast<const VarDeclStmt&>(s);
      std::string out =
          pad + (v.scope == DeclScope::kSymmetric ? "WE HAS A " : "I HAS A ") +
          v.name;
      bool first_clause = true;
      auto clause = [&](const std::string& text) {
        out += (first_clause ? " " : " AN ") + text;
        first_clause = false;
      };
      if (v.is_array) {
        std::string t = v.declared_type
                            ? std::string(type_name(*v.declared_type)) + "S"
                            : "NUMBRS";
        clause(std::string("ITZ ") + (v.srsly ? "SRSLY " : "") + "LOTZ A " +
               t);
        if (v.array_size) clause("THAR IZ " + to_lolcode(*v.array_size));
      } else if (v.declared_type) {
        clause(std::string("ITZ ") + (v.srsly ? "SRSLY " : "") + "A " +
               std::string(type_name(*v.declared_type)));
      }
      if (v.init) clause("ITZ " + to_lolcode(*v.init));
      if (v.sharin) clause("IM SHARIN IT");
      return out + "\n";
    }
    case StmtKind::kAssign: {
      const auto& v = static_cast<const AssignStmt&>(s);
      return pad + to_lolcode(*v.target) + " R " + to_lolcode(*v.value) +
             "\n";
    }
    case StmtKind::kExpr:
      return pad + to_lolcode(*static_cast<const ExprStmt&>(s).expr) + "\n";
    case StmtKind::kVisible: {
      const auto& v = static_cast<const VisibleStmt&>(s);
      std::string out = pad + (v.to_stderr ? "INVISIBLE" : "VISIBLE");
      for (const auto& a : v.args) out += " " + to_lolcode(*a);
      if (!v.newline) out += "!";
      return out + "\n";
    }
    case StmtKind::kGimmeh:
      return pad + "GIMMEH " +
             to_lolcode(*static_cast<const GimmehStmt&>(s).target) + "\n";
    case StmtKind::kCastTo: {
      const auto& v = static_cast<const CastToStmt&>(s);
      return pad + to_lolcode(*v.target) + " IS NOW A " +
             std::string(type_name(v.type)) + "\n";
    }
    case StmtKind::kORly: {
      const auto& v = static_cast<const ORlyStmt&>(s);
      std::string out = pad + "O RLY?\n" + pad + "YA RLY\n" +
                        body_to_lolcode(v.ya_rly, indent + 1);
      for (const auto& [cond, body] : v.mebbe) {
        out += pad + "MEBBE " + to_lolcode(*cond) + "\n" +
               body_to_lolcode(body, indent + 1);
      }
      if (!v.no_wai.empty()) {
        out += pad + "NO WAI\n" + body_to_lolcode(v.no_wai, indent + 1);
      }
      return out + pad + "OIC\n";
    }
    case StmtKind::kWtf: {
      const auto& v = static_cast<const WtfStmt&>(s);
      std::string out = pad + "WTF?\n";
      for (const auto& c : v.cases) {
        out += pad + "OMG " + to_lolcode(*c.literal) + "\n" +
               body_to_lolcode(c.body, indent + 1);
      }
      if (v.has_default) {
        out += pad + "OMGWTF\n" + body_to_lolcode(v.default_body, indent + 1);
      }
      return out + pad + "OIC\n";
    }
    case StmtKind::kLoop: {
      const auto& v = static_cast<const LoopStmt&>(s);
      std::string out = pad + "IM IN YR " + v.label;
      switch (v.update) {
        case LoopUpdate::kUppin:
          out += " UPPIN YR " + v.var;
          break;
        case LoopUpdate::kNerfin:
          out += " NERFIN YR " + v.var;
          break;
        case LoopUpdate::kFunc:
          out += " " + v.func + " YR " + v.var;
          break;
        case LoopUpdate::kNone:
          break;
      }
      if (v.cond_kind == LoopCond::kTil) out += " TIL " + to_lolcode(*v.cond);
      if (v.cond_kind == LoopCond::kWile)
        out += " WILE " + to_lolcode(*v.cond);
      out += "\n" + body_to_lolcode(v.body, indent + 1) + pad +
             "IM OUTTA YR " + v.label + "\n";
      return out;
    }
    case StmtKind::kGtfo:
      return pad + "GTFO\n";
    case StmtKind::kFoundYr:
      return pad + "FOUND YR " +
             to_lolcode(*static_cast<const FoundYrStmt&>(s).value) + "\n";
    case StmtKind::kFuncDef: {
      const auto& v = static_cast<const FuncDefStmt&>(s);
      std::string out = pad + "HOW IZ I " + v.name;
      for (std::size_t i = 0; i < v.params.size(); ++i) {
        out += (i ? " AN YR " : " YR ") + v.params[i];
      }
      out += "\n" + body_to_lolcode(v.body, indent + 1) + pad +
             "IF U SAY SO\n";
      return out;
    }
    case StmtKind::kCanHas:
      return pad + "CAN HAS " + static_cast<const CanHasStmt&>(s).library +
             "?\n";
    case StmtKind::kHugz:
      return pad + "HUGZ\n";
    case StmtKind::kLock: {
      const auto& v = static_cast<const LockStmt&>(s);
      const char* kw = v.op == LockOp::kAcquire  ? "IM SRSLY MESIN WIF "
                       : v.op == LockOp::kTry    ? "IM MESIN WIF "
                                                 : "DUN MESIN WIF ";
      return pad + kw + to_lolcode(*v.target) + "\n";
    }
    case StmtKind::kTxt: {
      const auto& v = static_cast<const TxtStmt&>(s);
      if (v.block_form) {
        return pad + "TXT MAH BFF " + to_lolcode(*v.target_pe) +
               " AN STUFF\n" + body_to_lolcode(v.body, indent + 1) + pad +
               "TTYL\n";
      }
      std::string inner = body_to_lolcode(v.body, 0);
      if (!inner.empty() && inner.back() == '\n') inner.pop_back();
      return pad + "TXT MAH BFF " + to_lolcode(*v.target_pe) + ", " + inner +
             "\n";
    }
  }
  return pad + "<stmt>\n";
}

std::string to_lolcode(const Program& p) {
  std::string out = "HAI";
  if (p.version) {
    std::ostringstream os;
    os << *p.version;
    std::string v = os.str();
    if (v.find('.') == std::string::npos) v += ".0";
    out += " " + v;
  }
  out += "\n";
  out += body_to_lolcode(p.body, 0);
  out += "KTHXBYE\n";
  return out;
}

// ---------------------------------------------------------------------------
// Structural dump
// ---------------------------------------------------------------------------

std::string dump(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumbrLit:
      return "(numbr " +
             support::format_numbr(static_cast<const NumbrLit&>(e).value) +
             ")";
    case ExprKind::kNumbarLit: {
      std::ostringstream os;
      os << static_cast<const NumbarLit&>(e).value;
      return "(numbar " + os.str() + ")";
    }
    case ExprKind::kTroofLit:
      return static_cast<const TroofLit&>(e).value ? "(troof WIN)"
                                                   : "(troof FAIL)";
    case ExprKind::kNoobLit:
      return "(noob)";
    case ExprKind::kYarnLit: {
      const auto& y = static_cast<const YarnLit&>(e);
      std::string out = "(yarn";
      for (const auto& seg : y.segments) {
        out += seg.is_var ? " {" + seg.text + "}"
                          : " \"" + support::c_escape(seg.text) + "\"";
      }
      return out + ")";
    }
    case ExprKind::kVarRef: {
      const auto& v = static_cast<const VarRef&>(e);
      std::string q = v.locality == Locality::kRemote  ? "ur "
                      : v.locality == Locality::kLocal ? "mah "
                                                       : "";
      return "(var " + q + v.name + ")";
    }
    case ExprKind::kSrsRef: {
      const auto& v = static_cast<const SrsRef&>(e);
      return "(srs " + dump(*v.name_expr) + ")";
    }
    case ExprKind::kIndex: {
      const auto& v = static_cast<const IndexExpr&>(e);
      return "(index " + dump(*v.base) + " " + dump(*v.index) + ")";
    }
    case ExprKind::kItRef:
      return "(it)";
    case ExprKind::kMe:
      return "(me)";
    case ExprKind::kMahFrenz:
      return "(mah-frenz)";
    case ExprKind::kWhatevr:
      return "(whatevr)";
    case ExprKind::kWhatevar:
      return "(whatevar)";
    case ExprKind::kBinary: {
      const auto& v = static_cast<const BinaryExpr&>(e);
      static const char* names[] = {"sum",       "diff",    "produkt",
                                    "quoshunt",  "mod",     "biggr",
                                    "smallr",    "saem",    "diffrint",
                                    "bigger",    "smallr<", "both",
                                    "either",    "won"};
      return std::string("(") + names[static_cast<int>(v.op)] + " " +
             dump(*v.lhs) + " " + dump(*v.rhs) + ")";
    }
    case ExprKind::kNary: {
      const auto& v = static_cast<const NaryExpr&>(e);
      static const char* names[] = {"all", "any", "smoosh"};
      std::string out = std::string("(") + names[static_cast<int>(v.op)];
      for (const auto& o : v.operands) out += " " + dump(*o);
      return out + ")";
    }
    case ExprKind::kUnary: {
      const auto& v = static_cast<const UnaryExpr&>(e);
      static const char* names[] = {"not", "squar", "unsquar", "flip"};
      return std::string("(") + names[static_cast<int>(v.op)] + " " +
             dump(*v.operand) + ")";
    }
    case ExprKind::kCast: {
      const auto& v = static_cast<const CastExpr&>(e);
      return "(maek " + dump(*v.value) + " " +
             std::string(type_name(v.type)) + ")";
    }
    case ExprKind::kCall: {
      const auto& v = static_cast<const CallExpr&>(e);
      std::string out = "(call " + v.callee;
      for (const auto& a : v.args) out += " " + dump(*a);
      return out + ")";
    }
  }
  return "(?)";
}

namespace {

std::string dump_body(const StmtList& body) {
  std::string out;
  for (const auto& s : body) out += " " + dump(*s);
  return out;
}

}  // namespace

std::string dump(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kVarDecl: {
      const auto& v = static_cast<const VarDeclStmt&>(s);
      std::string out = "(decl ";
      out += v.scope == DeclScope::kSymmetric ? "we " : "i ";
      out += v.name;
      if (v.declared_type)
        out += std::string(" :") + std::string(type_name(*v.declared_type));
      if (v.srsly) out += " srsly";
      if (v.is_array) {
        out += " array";
        if (v.array_size) out += " size=" + dump(*v.array_size);
      }
      if (v.init) out += " init=" + dump(*v.init);
      if (v.sharin) out += " sharin";
      return out + ")";
    }
    case StmtKind::kAssign: {
      const auto& v = static_cast<const AssignStmt&>(s);
      return "(assign " + dump(*v.target) + " " + dump(*v.value) + ")";
    }
    case StmtKind::kExpr:
      return "(expr " + dump(*static_cast<const ExprStmt&>(s).expr) + ")";
    case StmtKind::kVisible: {
      const auto& v = static_cast<const VisibleStmt&>(s);
      std::string out = v.to_stderr ? "(invisible" : "(visible";
      for (const auto& a : v.args) out += " " + dump(*a);
      if (!v.newline) out += " !";
      return out + ")";
    }
    case StmtKind::kGimmeh:
      return "(gimmeh " + dump(*static_cast<const GimmehStmt&>(s).target) +
             ")";
    case StmtKind::kCastTo: {
      const auto& v = static_cast<const CastToStmt&>(s);
      return "(isnowa " + dump(*v.target) + " " +
             std::string(type_name(v.type)) + ")";
    }
    case StmtKind::kORly: {
      const auto& v = static_cast<const ORlyStmt&>(s);
      std::string out = "(orly (ya" + dump_body(v.ya_rly) + ")";
      for (const auto& [cond, body] : v.mebbe) {
        out += " (mebbe " + dump(*cond) + dump_body(body) + ")";
      }
      if (!v.no_wai.empty()) out += " (nowai" + dump_body(v.no_wai) + ")";
      return out + ")";
    }
    case StmtKind::kWtf: {
      const auto& v = static_cast<const WtfStmt&>(s);
      std::string out = "(wtf";
      for (const auto& c : v.cases) {
        out += " (omg " + dump(*c.literal) + dump_body(c.body) + ")";
      }
      if (v.has_default) out += " (omgwtf" + dump_body(v.default_body) + ")";
      return out + ")";
    }
    case StmtKind::kLoop: {
      const auto& v = static_cast<const LoopStmt&>(s);
      std::string out = "(loop " + v.label;
      switch (v.update) {
        case LoopUpdate::kUppin:
          out += " uppin:" + v.var;
          break;
        case LoopUpdate::kNerfin:
          out += " nerfin:" + v.var;
          break;
        case LoopUpdate::kFunc:
          out += " " + v.func + ":" + v.var;
          break;
        case LoopUpdate::kNone:
          break;
      }
      if (v.cond_kind == LoopCond::kTil) out += " til=" + dump(*v.cond);
      if (v.cond_kind == LoopCond::kWile) out += " wile=" + dump(*v.cond);
      return out + dump_body(v.body) + ")";
    }
    case StmtKind::kGtfo:
      return "(gtfo)";
    case StmtKind::kFoundYr:
      return "(found " + dump(*static_cast<const FoundYrStmt&>(s).value) +
             ")";
    case StmtKind::kFuncDef: {
      const auto& v = static_cast<const FuncDefStmt&>(s);
      std::string out = "(func " + v.name + " (";
      for (std::size_t i = 0; i < v.params.size(); ++i) {
        out += (i ? " " : "") + v.params[i];
      }
      return out + ")" + dump_body(v.body) + ")";
    }
    case StmtKind::kCanHas:
      return "(canhas " + static_cast<const CanHasStmt&>(s).library + ")";
    case StmtKind::kHugz:
      return "(hugz)";
    case StmtKind::kLock: {
      const auto& v = static_cast<const LockStmt&>(s);
      static const char* names[] = {"lock", "trylock", "unlock"};
      return std::string("(") + names[static_cast<int>(v.op)] + " " +
             dump(*v.target) + ")";
    }
    case StmtKind::kTxt: {
      const auto& v = static_cast<const TxtStmt&>(s);
      return std::string("(txt ") + (v.block_form ? "block " : "") +
             dump(*v.target_pe) + dump_body(v.body) + ")";
    }
  }
  return "(?)";
}

std::string dump(const Program& p) {
  std::string out = "(program";
  for (const auto& s : p.body) out += "\n  " + dump(*s);
  return out + ")";
}

}  // namespace lol::ast

HAI 1.2
BTW 1-D heat diffusion with halo exchange over symmetric memory.
BTW Each PE owns 8 interior cells plus two halo slots (0 and 9).
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 10
I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 10
I HAS A left ITZ A NUMBR AN ITZ DIFF OF ME AN 1
I HAS A rite ITZ A NUMBR AN ITZ SUM OF ME AN 1
I HAS A lastcell ITZ A NUMBR AN ITZ 8

BTW a heat spike in the middle of PE 0's block
BOTH SAEM ME AN 0, O RLY?
YA RLY
  u'Z 5 R 100.0
OIC
HUGZ

IM IN YR steps UPPIN YR t TIL BOTH SAEM t AN 5
  BTW push boundary cells into the neighbours' halo slots
  BIGGER ME AN 0, O RLY?
  YA RLY
    TXT MAH BFF left, UR u'Z SUM OF lastcell AN 1 R MAH u'Z 1
  OIC
  SMALLR ME AN DIFF OF MAH FRENZ AN 1, O RLY?
  YA RLY
    TXT MAH BFF rite, UR u'Z 0 R MAH u'Z lastcell
  OIC
  HUGZ
  IM IN YR cells UPPIN YR i TIL BOTH SAEM i AN lastcell
    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1
    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN ...
      SUM OF DIFF OF u'Z DIFF OF c AN 1 AN u'Z c ...
      AN DIFF OF u'Z SUM OF c AN 1 AN u'Z c
  IM OUTTA YR cells
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN lastcell
    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1
    u'Z c R unew'Z c
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR steps

I HAS A total ITZ A NUMBAR AN ITZ 0.0
IM IN YR sum UPPIN YR i TIL BOTH SAEM i AN lastcell
  total R SUM OF total AN u'Z SUM OF i AN 1
IM OUTTA YR sum
VISIBLE "PE " ME " BLOCK HEAT " total
KTHXBYE

HAI 1.2
BTW the smallest SPMD program: who am I, how many of us are there?
VISIBLE "PE " ME " OF " MAH FRENZ " SEZ O HAI"
KTHXBYE

// Paper §VI.B: lock-protected remote updates of a shared counter, and a
// demonstration of WHY the lock matters — the same program with the lock
// statements removed loses updates.
//
//   $ ./lock_counter
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"

namespace {

// The same remote-update loop without IM SRSLY MESIN WIF / DUN MESIN WIF:
// a racy read-modify-write.
const char* kUnlockedProgram = R"(HAI 1.2
WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 200
  TXT MAH BFF 0 AN STUFF
    UR x R SUM OF UR x AN 1
  TTYL
IM OUTTA YR loop
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE "KOUNTER IZ " x
OIC
KTHXBYE
)";

}  // namespace

int main() {
  lol::RunConfig cfg;
  cfg.n_pes = 8;
  cfg.backend = lol::Backend::kVm;

  auto locked = lol::run_source(lol::paper::lock_counter_listing(200), cfg);
  if (!locked.ok) {
    std::cerr << "error: " << locked.first_error() << "\n";
    return 1;
  }
  std::cout << "WIF LOCKZ (paper SVI.B):   " << locked.pe_output[0];

  auto racy = lol::run_source(kUnlockedProgram, cfg);
  if (!racy.ok) {
    std::cerr << "error: " << racy.first_error() << "\n";
    return 1;
  }
  std::cout << "NO LOCKZ (lost updates):   " << racy.pe_output[0];
  std::cout << "expected with 8 PEs x 200: KOUNTER IZ 1600\n"
            << "The implicit lock (IM SHARIN IT) makes the remote\n"
            << "read-modify-write atomic; without it updates are lost.\n";
  return 0;
}

// A domain-decomposed 1-D heat diffusion stencil in parallel LOLCODE —
// the classic halo-exchange pattern the paper's model teaches: each PE
// owns a block of cells, exchanges boundary cells with its neighbours
// through symmetric memory, and HUGZ separates the phases.
//
//   $ ./heat_1d [n_pes] [cells_per_pe] [steps]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.hpp"

namespace {

std::string heat_program(int cells, int steps) {
  const std::string n = std::to_string(cells);
  return std::string(R"(HAI 1.2
BTW 1-D heat diffusion with halo exchange over symmetric memory.
BTW Each PE owns )") +
         n + R"( interior cells plus two halo slots (0 and )" +
         std::to_string(cells + 1) + R"().
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ )" +
         std::to_string(cells + 2) + R"(
I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ )" +
         std::to_string(cells + 2) + R"(
I HAS A left ITZ A NUMBR AN ITZ DIFF OF ME AN 1
I HAS A rite ITZ A NUMBR AN ITZ SUM OF ME AN 1
I HAS A lastcell ITZ A NUMBR AN ITZ )" +
         n + R"(

BTW a heat spike in the middle of PE 0's block
BOTH SAEM ME AN 0, O RLY?
YA RLY
  u'Z )" +
         std::to_string(cells / 2 + 1) + R"( R 100.0
OIC
HUGZ

IM IN YR steps UPPIN YR t TIL BOTH SAEM t AN )" +
         std::to_string(steps) + R"(
  BTW push boundary cells into the neighbours' halo slots
  BIGGER ME AN 0, O RLY?
  YA RLY
    TXT MAH BFF left, UR u'Z SUM OF lastcell AN 1 R MAH u'Z 1
  OIC
  SMALLR ME AN DIFF OF MAH FRENZ AN 1, O RLY?
  YA RLY
    TXT MAH BFF rite, UR u'Z 0 R MAH u'Z lastcell
  OIC
  HUGZ
  IM IN YR cells UPPIN YR i TIL BOTH SAEM i AN lastcell
    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1
    unew'Z c R SUM OF u'Z c AN PRODUKT OF 0.25 AN ...
      SUM OF DIFF OF u'Z DIFF OF c AN 1 AN u'Z c ...
      AN DIFF OF u'Z SUM OF c AN 1 AN u'Z c
  IM OUTTA YR cells
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN lastcell
    I HAS A c ITZ A NUMBR AN ITZ SUM OF i AN 1
    u'Z c R unew'Z c
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR steps

I HAS A total ITZ A NUMBAR AN ITZ 0.0
IM IN YR sum UPPIN YR i TIL BOTH SAEM i AN lastcell
  total R SUM OF total AN u'Z SUM OF i AN 1
IM OUTTA YR sum
VISIBLE "PE " ME " BLOCK HEAT " total
KTHXBYE
)";
}

}  // namespace

int main(int argc, char** argv) {
  int n_pes = argc > 1 ? std::atoi(argv[1]) : 4;
  int cells = argc > 2 ? std::atoi(argv[2]) : 16;
  int steps = argc > 3 ? std::atoi(argv[3]) : 25;

  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  auto r = lol::run_source(heat_program(cells, steps), cfg);
  if (!r.ok) {
    std::cerr << "error: " << r.first_error() << "\n";
    return 1;
  }
  double total = 0.0;
  for (int pe = 0; pe < n_pes; ++pe) {
    std::cout << r.pe_output[static_cast<std::size_t>(pe)];
    const std::string& out = r.pe_output[static_cast<std::size_t>(pe)];
    auto pos = out.rfind(' ');
    if (pos != std::string::npos) total += std::atof(out.c_str() + pos);
  }
  std::cout << "total heat across PEs: " << total
            << " (diffuses but is conserved away from the boundaries)\n";
  return 0;
}

// Paper §VI.A: circular whole-array transfer between neighbouring PEs,
// run on 8 PEs with the exact published listing.
//
//   $ ./ring
#include <iostream>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"

int main() {
  lol::RunConfig cfg;
  cfg.n_pes = 8;
  cfg.backend = lol::Backend::kVm;
  lol::RunResult r = lol::run_source(lol::paper::ring_listing(), cfg);
  if (!r.ok) {
    std::cerr << "error: " << r.first_error() << "\n";
    return 1;
  }
  for (int pe = 0; pe < cfg.n_pes; ++pe) {
    std::cout << r.pe_output[static_cast<std::size_t>(pe)];
  }
  std::cout << "(each PE now holds its successor's array — the paper's "
               "circular message transfer)\n";
  return 0;
}

// Monte-Carlo pi estimation in parallel LOLCODE: every PE throws darts
// with WHATEVAR (Table III), counts the hits in the unit quarter-circle,
// then all counts are combined on PE 0 through symmetric memory — a
// classic first SPMD exercise.
//
//   $ ./pi_monte_carlo [n_pes] [darts_per_pe]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.hpp"

namespace {

std::string pi_program(int darts) {
  return std::string(R"(HAI 1.2
WE HAS A hits ITZ SRSLY A NUMBR
I HAS A mine ITZ A NUMBR AN ITZ 0
IM IN YR throwz UPPIN YR i TIL BOTH SAEM i AN )") +
         std::to_string(darts) + R"(
  I HAS A px ITZ A NUMBAR AN ITZ WHATEVAR
  I HAS A py ITZ A NUMBAR AN ITZ WHATEVAR
  SMALLR SUM OF SQUAR OF px AN SQUAR OF py AN 1.0, O RLY?
  YA RLY
    mine R SUM OF mine AN 1
  OIC
IM OUTTA YR throwz
hits R mine
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A total ITZ A NUMBR AN ITZ 0
  IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    TXT MAH BFF k, total R SUM OF total AN UR hits
  IM OUTTA YR gather
  I HAS A n ITZ A NUMBR AN ITZ PRODUKT OF MAH FRENZ AN )" +
         std::to_string(darts) + R"(
  VISIBLE "PI IZ KINDA " QUOSHUNT OF PRODUKT OF 4.0 AN total AN n
OIC
KTHXBYE
)";
}

}  // namespace

int main(int argc, char** argv) {
  int n_pes = argc > 1 ? std::atoi(argv[1]) : 4;
  int darts = argc > 2 ? std::atoi(argv[2]) : 20000;

  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  auto r = lol::run_source(pi_program(darts), cfg);
  if (!r.ok) {
    std::cerr << "error: " << r.first_error() << "\n";
    return 1;
  }
  std::cout << r.pe_output[0];
  std::cout << "(" << n_pes << " PEs x " << darts
            << " darts; WHATEVAR streams are independent per PE)\n";
  return 0;
}

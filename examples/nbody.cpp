// Paper §VI.D: the complete parallel 2-D n-body program, run on 4 PEs
// with the VM backend, with modeled Epiphany-III timing reported.
//
//   $ ./nbody [n_pes] [particles] [steps]
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"
#include "noc/machines.hpp"

int main(int argc, char** argv) {
  int n_pes = argc > 1 ? std::atoi(argv[1]) : 4;
  int particles = argc > 2 ? std::atoi(argv[2]) : 32;
  int steps = argc > 3 ? std::atoi(argv[3]) : 10;

  lol::RunConfig cfg;
  cfg.n_pes = n_pes;
  cfg.backend = lol::Backend::kVm;
  cfg.machine = lol::noc::epiphany3();  // model the Parallella target

  auto r = lol::run_source(
      lol::paper::nbody_program(particles, steps, /*print_positions=*/true),
      cfg);
  if (!r.ok) {
    std::cerr << "error: " << r.first_error() << "\n";
    return 1;
  }
  for (int pe = 0; pe < n_pes; ++pe) {
    std::cout << r.pe_output[static_cast<std::size_t>(pe)];
  }
  std::cout << "[sim] " << n_pes << " PEs x " << particles
            << " particles x " << steps
            << " steps; modeled Epiphany-III comm+sync time: "
            << r.max_sim_ns() / 1000.0 << " us\n";
  return 0;
}

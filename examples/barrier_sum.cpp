// Paper §VI.C / Figure 2: symmetric data movement needs a barrier. Runs
// the published listing and prints the per-PE sums.
//
//   $ ./barrier_sum
#include <iostream>

#include "core/engine.hpp"
#include "core/paper_programs.hpp"

int main() {
  lol::RunConfig cfg;
  cfg.n_pes = 8;
  cfg.backend = lol::Backend::kVm;
  auto r = lol::run_source(lol::paper::barrier_sum_listing(), cfg);
  if (!r.ok) {
    std::cerr << "error: " << r.first_error() << "\n";
    return 1;
  }
  for (int pe = 0; pe < cfg.n_pes; ++pe) {
    std::cout << r.pe_output[static_cast<std::size_t>(pe)];
  }
  std::cout << "(c = a + b computed only after HUGZ guarantees every b has "
               "arrived — Figure 2)\n";
  return 0;
}

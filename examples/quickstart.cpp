// Quickstart: embed the PARALLOL engine, compile a parallel LOLCODE
// program, run it SPMD on 4 PEs and read the per-PE output.
//
//   $ ./quickstart
#include <iostream>

#include "core/engine.hpp"

int main() {
  const char* program = R"(HAI 1.2
BTW every PE introduces itself, then PE 0 reports the team size
VISIBLE "O HAI! I IZ PE " ME " OF " MAH FRENZ
WE HAS A count ITZ SRSLY A NUMBR AN IM SHARIN IT
HUGZ
TXT MAH BFF 0 AN STUFF
  IM SRSLY MESIN WIF UR count
  UR count R SUM OF UR count AN 1
  DUN MESIN WIF UR count
TTYL
HUGZ
BOTH SAEM ME AN 0, O RLY?
YA RLY
  VISIBLE count " FRENZ CHECKED IN. KTHXBYE!"
OIC
KTHXBYE
)";

  try {
    lol::CompiledProgram prog = lol::compile(program);

    lol::RunConfig cfg;
    cfg.n_pes = 4;
    cfg.backend = lol::Backend::kVm;
    lol::RunResult result = lol::run(prog, cfg);

    if (!result.ok) {
      std::cerr << "run failed: " << result.first_error() << "\n";
      return 1;
    }
    for (int pe = 0; pe < cfg.n_pes; ++pe) {
      std::cout << "--- PE " << pe << " ---\n"
                << result.pe_output[static_cast<std::size_t>(pe)];
    }
  } catch (const lol::support::LolError& e) {
    std::cerr << "compile error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
